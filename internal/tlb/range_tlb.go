package tlb

import (
	"errors"
	"fmt"

	"xlate/internal/addr"
)

// ErrBadRange is wrapped by Insert when handed an inverted or
// overlapping range translation, so callers can classify malformed
// ranges with errors.Is instead of recovering a panic.
var ErrBadRange = errors.New("malformed range translation")

// RangeEntry is one range-translation entry: an arbitrarily large range
// of pages contiguous in both virtual and physical address space with
// uniform protection (Karakostas et al., ISCA 2015). The entry maps
// [Start, End) to [PABase, PABase+End-Start).
type RangeEntry struct {
	Start  addr.VA // inclusive, page aligned
	End    addr.VA // exclusive, page aligned
	PABase addr.PA // physical address of Start
}

// Contains reports whether va falls inside the range.
func (e RangeEntry) Contains(va addr.VA) bool { return va >= e.Start && va < e.End }

// Translate maps va (which must be inside the range) to its physical
// address.
func (e RangeEntry) Translate(va addr.VA) addr.PA {
	return e.PABase + addr.PA(va-e.Start)
}

// Bytes returns the size of the range.
func (e RangeEntry) Bytes() uint64 { return uint64(e.End - e.Start) }

// RangeTLB is a small fully-associative TLB holding range translations
// with LRU replacement. A lookup is a parallel range comparison (two
// bound checks per entry) rather than a tag equality check; the energy
// model charges it as a CAM with twice the tag bits (paper §5).
//
// The paper uses a 32-entry L2-range TLB (RMM) and adds a 4-entry
// L1-range TLB (RMM_Lite) that is small enough to meet L1 timing.
type RangeTLB struct {
	name     string
	capacity int
	// entries is ordered most-recently-used first.
	entries []RangeEntry
	stats   Stats
}

// NewRangeTLB constructs a range TLB with the given entry capacity.
func NewRangeTLB(name string, capacity int) *RangeTLB {
	if capacity <= 0 {
		panic(fmt.Sprintf("tlb: invalid range TLB capacity %d", capacity))
	}
	return &RangeTLB{name: name, capacity: capacity,
		entries: make([]RangeEntry, 0, capacity)}
}

// Name returns the identifier given at construction.
func (t *RangeTLB) Name() string { return t.name }

// Capacity returns the entry capacity.
func (t *RangeTLB) Capacity() int { return t.capacity }

// Len returns the number of valid entries.
func (t *RangeTLB) Len() int { return len(t.entries) }

// Stats returns a copy of the event counters.
func (t *RangeTLB) Stats() Stats { return t.stats }

// ResetStats zeroes the event counters.
func (t *RangeTLB) ResetStats() { t.stats = Stats{} }

// Lookup probes the range TLB for a range containing va. On a hit the
// entry is promoted to MRU.
//
//eeat:hotpath
func (t *RangeTLB) Lookup(va addr.VA) (RangeEntry, bool) {
	t.stats.Lookups++
	for i, e := range t.entries {
		if e.Contains(va) {
			t.stats.Hits++
			copy(t.entries[1:i+1], t.entries[:i])
			t.entries[0] = e
			return e, true
		}
	}
	t.stats.Misses++
	return RangeEntry{}, false
}

// Insert fills the range TLB with a range translation, evicting the LRU
// entry if full. Inserting a range identical to a resident one promotes
// it instead of duplicating. Inverted or overlapping-but-non-identical
// ranges are rejected with an error wrapping ErrBadRange — the range
// table never produces them, so the simulator treats a rejection as an
// internal invariant violation.
//
//eeat:hotpath
func (t *RangeTLB) Insert(e RangeEntry) error {
	if e.End <= e.Start {
		return fmt.Errorf("tlb %s: %w: inverted range [%#x,%#x)", t.name, ErrBadRange, e.Start, e.End) //eeatlint:allow hotpath reject path runs only on an internal invariant violation, which aborts the run
	}
	for i, old := range t.entries {
		if old == e {
			copy(t.entries[1:i+1], t.entries[:i])
			t.entries[0] = e
			return nil
		}
		if old.Start < e.End && e.Start < old.End {
			return fmt.Errorf("tlb %s: %w: overlapping ranges [%#x,%#x) and [%#x,%#x)", //eeatlint:allow hotpath reject path runs only on an internal invariant violation, which aborts the run
				t.name, ErrBadRange, old.Start, old.End, e.Start, e.End)
		}
	}
	t.stats.Fills++
	if len(t.entries) >= t.capacity {
		t.stats.Evicts++
		t.entries = t.entries[:t.capacity-1]
	}
	t.entries = append(t.entries, RangeEntry{}) //eeatlint:allow hotpath entries is preallocated to capacity; the eviction above keeps len below it
	copy(t.entries[1:], t.entries[:len(t.entries)-1])
	t.entries[0] = e
	return nil
}

// InvalidateOverlapping removes every entry that overlaps [start, end),
// returning the number removed. The OS invokes this when it changes a
// mapping.
func (t *RangeTLB) InvalidateOverlapping(start, end addr.VA) int {
	n := 0
	dst := t.entries[:0]
	for _, e := range t.entries {
		if e.Start < end && start < e.End {
			n++
			continue
		}
		dst = append(dst, e) //eeatlint:allow hotpath dst compacts in place over entries' own backing array; its length never exceeds the original
	}
	t.entries = dst
	t.stats.Invals += uint64(n)
	return n
}

// Flush invalidates every entry.
func (t *RangeTLB) Flush() {
	t.stats.Invals += uint64(len(t.entries))
	t.entries = t.entries[:0]
}

// ForEach calls fn for every valid entry without touching recency or
// statistics. It is allocation-free; the runtime auditor uses it for
// coherence scans against the range table. fn must not mutate the TLB.
func (t *RangeTLB) ForEach(fn func(RangeEntry)) {
	for _, e := range t.entries {
		fn(e)
	}
}

// CheckInvariants validates the structural invariants of the range TLB:
// occupancy never exceeds capacity, no resident range is inverted or
// empty, and no two resident ranges overlap. It is allocation-free so
// the runtime auditor can call it from inside the simulation loop.
func (t *RangeTLB) CheckInvariants() error {
	if len(t.entries) > t.capacity {
		return fmt.Errorf("tlb %s: %d entries exceed capacity %d", t.name, len(t.entries), t.capacity)
	}
	for i, e := range t.entries {
		if e.End <= e.Start {
			return fmt.Errorf("tlb %s: entry %d holds inverted range [%#x,%#x)", t.name, i, e.Start, e.End)
		}
		for j := i + 1; j < len(t.entries); j++ {
			o := t.entries[j]
			if o.Start < e.End && e.Start < o.End {
				return fmt.Errorf("tlb %s: entries %d and %d overlap: [%#x,%#x) and [%#x,%#x)",
					t.name, i, j, e.Start, e.End, o.Start, o.End)
			}
		}
	}
	return nil
}

// MutateEntry calls fn on each resident entry in turn until fn returns
// true, meaning it mutated that entry; the walk then stops and
// MutateEntry reports whether any entry was mutated. It exists solely
// for the audit fault injector (internal/audit/inject) — no simulation
// path mutates entries this way.
func (t *RangeTLB) MutateEntry(fn func(*RangeEntry) bool) bool {
	for i := range t.entries {
		if fn(&t.entries[i]) {
			return true
		}
	}
	return false
}
