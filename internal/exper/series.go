package exper

import (
	"fmt"

	"xlate/internal/core"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// seriesExp is the Figure 4 drill-down: alongside the L1 MPKI timeline,
// it exports the per-interval dynamic energy per access and the Lite
// controller's L1-4KB active-way count for the two Lite configurations,
// all sampled on the same interval boundaries. Watching the three
// series together shows *why* an MPKI spike happens — a way
// reactivation raises energy per access and the MPKI recovers, or a
// resize lowers energy while MPKI holds. Render with -format csv for
// plottable output.
func seriesExp(opt Options) ([]*stats.Table, error) {
	opt = opt.WithDefaults()
	// 1M-instruction intervals at the paper's full budget, scaled down
	// so reduced-scale runs still resolve ≥16 points per series.
	interval := min(opt.Instrs/16, 1_000_000)
	if interval == 0 {
		interval = 1
	}
	kinds := []core.ConfigKind{core.CfgTLBLite, core.CfgRMMLite}
	t := stats.NewTable(fmt.Sprintf("Interval drill-down — MPKI, energy/access, and active ways per %d-instruction interval", interval),
		"Workload", "Config", "Series", "Mean", "Min", "Max", "Timeline")
	for _, s := range workloads.TLBIntensive() {
		for _, kind := range kinds {
			p := core.DefaultParams(kind)
			p.SeriesIntervalInstrs = interval
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			for _, ser := range []struct {
				label  string
				series stats.Series
			}{
				{"L1 MPKI", r.IntervalL1MPKI},
				{"energy/access (pJ)", r.IntervalEnergyPerRefPJ},
				{"L1-4KB active ways", r.IntervalLiteWays},
			} {
				t.AddRow(s.Name, kind.String(), ser.label,
					fmt.Sprintf("%.3f", ser.series.Mean()),
					fmt.Sprintf("%.3f", stats.Min(ser.series.Points)),
					fmt.Sprintf("%.3f", stats.Max(ser.series.Points)),
					ser.series.Sparkline(24))
			}
		}
	}
	return []*stats.Table{t}, nil
}
