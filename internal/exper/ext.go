package exper

import (
	"fmt"

	"xlate/internal/core"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// extPredictor evaluates the extension configurations beyond the paper:
// the realizable TLB_Pred (the paper only evaluates the perfect TLB_PP
// upper bound and notes it "under reports its true costs") and the
// combined design §6.1 suggests — "the L1-range TLB for range
// translations, the TLB_PP for pages, and the Lite mechanism to disable
// ways opportunistically".
func extPredictor(opt Options) ([]*stats.Table, error) {
	t := stats.NewTable("Extension — realizable TLB_Pred and the §6.1 Combined design (energy normalized to 4KB)",
		"Workload", "TLB_PP", "TLB_Pred", "mispredict", "Combined", "RMM_Lite", "Combined 1-way share")
	kinds := []core.ConfigKind{core.Cfg4KB, core.CfgTLBPP, core.CfgTLBPred, core.CfgCombined, core.CfgRMMLite}
	var pp, pred, comb, rl []float64
	for _, s := range workloads.TLBIntensive() {
		res := map[core.ConfigKind]core.Result{}
		for _, k := range kinds {
			r, err := runConfig(s, k, opt)
			if err != nil {
				return nil, err
			}
			res[k] = r
		}
		base := res[core.Cfg4KB].EnergyPJ()
		oneWay := res[core.CfgCombined].LiteLookupShare[0][0]
		t.AddRow(s.Name,
			norm(res[core.CfgTLBPP].EnergyPJ(), base),
			norm(res[core.CfgTLBPred].EnergyPJ(), base),
			pct(res[core.CfgTLBPred].MispredictRate),
			norm(res[core.CfgCombined].EnergyPJ(), base),
			norm(res[core.CfgRMMLite].EnergyPJ(), base),
			pct(oneWay))
		pp = append(pp, res[core.CfgTLBPP].EnergyPJ()/base)
		pred = append(pred, res[core.CfgTLBPred].EnergyPJ()/base)
		comb = append(comb, res[core.CfgCombined].EnergyPJ()/base)
		rl = append(rl, res[core.CfgRMMLite].EnergyPJ()/base)
	}
	t.AddRow("mean",
		fmt.Sprintf("%.3f", stats.Mean(pp)),
		fmt.Sprintf("%.3f", stats.Mean(pred)), "",
		fmt.Sprintf("%.3f", stats.Mean(comb)),
		fmt.Sprintf("%.3f", stats.Mean(rl)), "")
	return []*stats.Table{t}, nil
}
