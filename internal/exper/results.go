package exper

import (
	"fmt"

	"xlate/internal/core"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// runAllConfigs runs one workload under every configuration.
func runAllConfigs(s workloads.Spec, opt Options) (map[core.ConfigKind]core.Result, error) {
	out := make(map[core.ConfigKind]core.Result, core.NumConfigs)
	for _, k := range core.AllConfigs() {
		r, err := runConfig(s, k, opt)
		if err != nil {
			return nil, err
		}
		out[k] = r
	}
	return out, nil
}

// fig10 reproduces Figure 10: dynamic energy (top) and cycles spent in
// TLB misses (bottom) for every configuration, normalized to 4KB, plus
// the paper's headline aggregates.
func fig10(opt Options) ([]*stats.Table, error) {
	kinds := core.AllConfigs()
	te := stats.NewTable("Figure 10 (top) — dynamic energy normalized to 4KB",
		"Workload", "4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite")
	tc := stats.NewTable("Figure 10 (bottom) — cycles in TLB misses normalized to 4KB",
		"Workload", "4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite")
	sumsE := map[core.ConfigKind][]float64{}
	sumsC := map[core.ConfigKind][]float64{}
	var thpMissFrac, liteMissFrac []float64
	for _, s := range workloads.TLBIntensive() {
		res, err := runAllConfigs(s, opt)
		if err != nil {
			return nil, err
		}
		base := res[core.Cfg4KB]
		rowE := []string{s.Name}
		rowC := []string{s.Name}
		for _, k := range kinds {
			e := res[k].EnergyPJ() / base.EnergyPJ()
			c := float64(res[k].CyclesTLBMiss) / float64(base.CyclesTLBMiss)
			rowE = append(rowE, fmt.Sprintf("%.3f", e))
			rowC = append(rowC, fmt.Sprintf("%.3f", c))
			sumsE[k] = append(sumsE[k], e)
			sumsC[k] = append(sumsC[k], c)
		}
		te.AddRow(rowE...)
		tc.AddRow(rowC...)
		thpMissFrac = append(thpMissFrac, res[core.CfgTHP].MissCycleFraction())
		liteMissFrac = append(liteMissFrac, res[core.CfgTLBLite].MissCycleFraction())
	}
	rowE := []string{"mean"}
	rowC := []string{"mean"}
	for _, k := range kinds {
		rowE = append(rowE, fmt.Sprintf("%.3f", stats.Mean(sumsE[k])))
		rowC = append(rowC, fmt.Sprintf("%.3f", stats.Mean(sumsC[k])))
	}
	te.AddRow(rowE...)
	tc.AddRow(rowC...)

	h := stats.NewTable("Headline aggregates (paper §6.1 values in parentheses)",
		"Metric", "Measured", "Paper")
	mean := func(m map[core.ConfigKind][]float64, k core.ConfigKind) float64 { return stats.Mean(m[k]) }
	h.AddRow("TLB_Lite energy vs THP",
		pct(1-mean(sumsE, core.CfgTLBLite)/mean(sumsE, core.CfgTHP))+" saved", "23% saved")
	h.AddRow("RMM energy vs THP",
		pct(1-mean(sumsE, core.CfgRMM)/mean(sumsE, core.CfgTHP))+" saved", "8% saved")
	h.AddRow("TLB_PP energy vs THP",
		pct(1-mean(sumsE, core.CfgTLBPP)/mean(sumsE, core.CfgTHP))+" saved", "43% saved")
	h.AddRow("RMM_Lite energy vs THP",
		pct(1-mean(sumsE, core.CfgRMMLite)/mean(sumsE, core.CfgTHP))+" saved", "71% saved")
	h.AddRow("THP miss cycles vs 4KB",
		pct(1-mean(sumsC, core.CfgTHP))+" saved", "83% saved")
	h.AddRow("RMM_Lite miss cycles vs 4KB",
		pct(1-mean(sumsC, core.CfgRMMLite))+" saved", ">99% of THP's remainder")
	h.AddRow("Miss-cycle fraction THP → TLB_Lite",
		pct(stats.Mean(thpMissFrac))+" → "+pct(stats.Mean(liteMissFrac)), "16.6% → 17.2%")
	return []*stats.Table{te, tc, h}, nil
}

// fig11 reproduces Figure 11: absolute L1 and L2 MPKI per configuration.
func fig11(opt Options) ([]*stats.Table, error) {
	kinds := core.AllConfigs()
	t1 := stats.NewTable("Figure 11 (top) — L1 TLB MPKI",
		"Workload", "4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite")
	t2 := stats.NewTable("Figure 11 (bottom) — L2 TLB MPKI",
		"Workload", "4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite")
	for _, s := range workloads.TLBIntensive() {
		res, err := runAllConfigs(s, opt)
		if err != nil {
			return nil, err
		}
		row1 := []string{s.Name}
		row2 := []string{s.Name}
		for _, k := range kinds {
			row1 = append(row1, fmt.Sprintf("%.2f", res[k].L1MPKI()))
			row2 = append(row2, fmt.Sprintf("%.3f", res[k].L2MPKI()))
		}
		t1.AddRow(row1...)
		t2.AddRow(row2...)
	}
	return []*stats.Table{t1, t2}, nil
}

// fig12 reproduces Figure 12: dynamic energy (normalized to 4KB) for the
// remaining Spec2006 and Parsec workloads.
func fig12(opt Options) ([]*stats.Table, error) {
	sets := []struct {
		title string
		specs []workloads.Spec
	}{
		{"Figure 12 (top/middle) — remaining Spec2006, energy normalized to 4KB", workloads.OtherSpec2006()},
		{"Figure 12 (bottom) — remaining Parsec, energy normalized to 4KB", workloads.OtherParsec()},
	}
	var tables []*stats.Table
	for _, set := range sets {
		t := stats.NewTable(set.title,
			"Workload", "4KB", "THP", "TLB_Lite", "RMM", "TLB_PP", "RMM_Lite")
		liteSav := []float64{}
		rmmLiteSav := []float64{}
		for _, s := range set.specs {
			res, err := runAllConfigs(s, opt)
			if err != nil {
				return nil, err
			}
			base := res[core.Cfg4KB].EnergyPJ()
			row := []string{s.Name}
			for _, k := range core.AllConfigs() {
				row = append(row, norm(res[k].EnergyPJ(), base))
			}
			t.AddRow(row...)
			thp := res[core.CfgTHP].EnergyPJ()
			liteSav = append(liteSav, 1-res[core.CfgTLBLite].EnergyPJ()/thp)
			rmmLiteSav = append(rmmLiteSav, 1-res[core.CfgRMMLite].EnergyPJ()/thp)
		}
		t.AddRow("mean saved vs THP", "", pct(0), pct(stats.Mean(liteSav)), "", "", pct(stats.Mean(rmmLiteSav)))
		tables = append(tables, t)
	}
	return tables, nil
}

// table5 reproduces Table 5: the share of lookups performed with 4, 2
// and 1 active ways in the L1-page TLBs, and the attribution of L1 hits
// to structures, for TLB_Lite and RMM_Lite.
func table5(opt Options) ([]*stats.Table, error) {
	tWays := stats.NewTable("Table 5 (left) — % of lookups at 4/2/1 active ways",
		"Workload",
		"Lite 4KB: 4w", "Lite 4KB: 2w", "Lite 4KB: 1w",
		"Lite 2MB: 4w", "Lite 2MB: 2w", "Lite 2MB: 1w",
		"RMMLite 4KB: 4w", "RMMLite 4KB: 2w", "RMMLite 4KB: 1w")
	tHits := stats.NewTable("Table 5 (right) — % of L1 hits by structure",
		"Workload", "Lite: 4KB", "Lite: 2MB", "RMMLite: 4KB", "RMMLite: Range")
	shareRow := func(sh []float64) (string, string, string) {
		// index k = share at 2^k ways
		return pct(sh[2]), pct(sh[1]), pct(sh[0])
	}
	for _, s := range workloads.TLBIntensive() {
		lite, err := runConfig(s, core.CfgTLBLite, opt)
		if err != nil {
			return nil, err
		}
		rl, err := runConfig(s, core.CfgRMMLite, opt)
		if err != nil {
			return nil, err
		}
		l4a, l4b, l4c := shareRow(lite.LiteLookupShare[0])
		l2a, l2b, l2c := shareRow(lite.LiteLookupShare[1])
		r4a, r4b, r4c := shareRow(rl.LiteLookupShare[0])
		tWays.AddRow(s.Name, l4a, l4b, l4c, l2a, l2b, l2c, r4a, r4b, r4c)

		lh := float64(lite.L1Hits())
		rh := float64(rl.L1Hits())
		tHits.AddRow(s.Name,
			pct(float64(lite.Hits4K)/lh), pct(float64(lite.Hits2M)/lh),
			pct(float64(rl.Hits4K)/rh), pct(float64(rl.HitsRange)/rh))
	}
	return []*stats.Table{tWays, tHits}, nil
}
