// Package exper implements the experiment harness: one runner per table
// and figure of the paper's characterization (§3) and evaluation (§6),
// plus the sensitivity analyses and the ablations DESIGN.md calls out.
// Each experiment reproduces the corresponding artifact's rows/series;
// EXPERIMENTS.md records measured-vs-paper for all of them.
package exper

import (
	"context"
	"fmt"
	"sort"

	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/core"
	"xlate/internal/stats"
	"xlate/internal/telemetry"
	"xlate/internal/vm"
	"xlate/internal/workloads"
)

// Options parameterizes a harness run.
type Options struct {
	// Instrs is the instruction budget per simulation (default 20 M).
	// The paper simulates 50 B instructions after a 50 B fast-forward;
	// the synthetic workloads are stationary per phase and converge
	// within a few million instructions (DESIGN.md §1).
	Instrs uint64
	// Scale multiplies workload footprints (default 1.0). Benches use
	// smaller scales to bound setup time; shapes degrade below ~0.5.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Runner, when non-nil, executes every simulation cell on behalf of
	// the experiment. The harness installs recording and serving runners
	// here to plan, parallelize, and memoize cells; nil runs each cell
	// inline via ExecuteJob.
	Runner Runner
	// Audit, when enabled, attaches the runtime integrity layer
	// (internal/audit) to every cell's simulator; a violation fails the
	// cell with a typed audit.ViolationError, marking the dependent
	// artifacts not-reproduced.
	Audit audit.Config
	// Inject is a deterministic fault to corrupt every cell with
	// (internal/audit/inject) — combined with Audit it proves end to end
	// that injected corruption is detected.
	Inject inject.Fault
	// Metrics, when non-nil, attaches every cell's simulator to the
	// shared telemetry registry (flushed deltas; see core.Metrics).
	// Observation-only: results stay byte-identical.
	Metrics *core.Metrics
	// Trace, when non-nil, receives sampled structured events from every
	// cell's simulator. Observation-only like Metrics.
	Trace *telemetry.Tracer
}

// Job is one simulation cell: a workload built under an OS policy and
// simulated with one parameter set. Experiments funnel every simulation
// through a Job so an external Runner can execute them in parallel,
// checkpoint them, and recover panics, while the zero Options still
// runs them inline.
type Job struct {
	Spec   workloads.Spec
	Params core.Params
	Policy vm.Policy
	Instrs uint64
	Scale  float64
	Seed   int64
}

// Runner executes simulation cells on behalf of the experiments.
type Runner interface {
	RunCell(Job) (core.Result, error)
}

// WithDefaults fills in the zero fields: 20 M instructions, scale 1.0,
// seed 42.
func (o Options) WithDefaults() Options {
	if o.Instrs == 0 {
		o.Instrs = 20_000_000
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string // e.g. "fig10"
	Title string
	Run   func(opt Options) ([]*stats.Table, error)
}

// All returns every experiment, in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table 1 — per-core TLB hierarchy details", Run: table1},
		{ID: "table2", Title: "Table 2 — Cacti energies and analytical-model validation", Run: table2},
		{ID: "table3", Title: "Table 3 — energy and performance model golden values", Run: table3},
		{ID: "table4", Title: "Table 4 — workload descriptions and footprints", Run: table4},
		{ID: "fig2", Title: "Figure 2 — energy and TLB-miss-cycle characterization (4KB/THP/RMM)", Run: fig2},
		{ID: "fig3", Title: "Figure 3 — dynamic energy vs page-walk L1-cache hit ratio", Run: fig3},
		{ID: "fig4", Title: "Figure 4 — L1 MPKI over time with smaller fixed L1-4KB TLBs", Run: fig4},
		{ID: "fig10", Title: "Figure 10 — dynamic energy and TLB-miss cycles, all configurations", Run: fig10},
		{ID: "fig11", Title: "Figure 11 — L1 and L2 TLB MPKI, all configurations", Run: fig11},
		{ID: "fig12", Title: "Figure 12 — energy reduction for the remaining Spec2006/Parsec workloads", Run: fig12},
		{ID: "table5", Title: "Table 5 — active-way lookup shares and L1 hit attribution", Run: table5},
		{ID: "sens-interval", Title: "§6.2 — interval size and random-probability sensitivity", Run: sensInterval},
		{ID: "sens-threshold", Title: "§6.2 — threshold ε sensitivity (the paper's future work)", Run: sensThreshold},
		{ID: "sens-l1range", Title: "Ablation — L1-range TLB size sweep", Run: sensL1Range},
		{ID: "abl-lite", Title: "Ablation — Lite mechanism components and the §4.4 fully-associative variant", Run: ablLite},
		{ID: "series", Title: "Interval drill-down — per-interval MPKI, energy/access, and Lite active ways", Run: seriesExp},
		{ID: "static", Title: "§6.2 — static (leakage) energy saved by power-gating disabled ways", Run: static},
		{ID: "ext-predictor", Title: "Extension — realizable TLB_Pred and the §6.1 Combined design", Run: extPredictor},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// ExecuteJob builds and simulates one cell inline.
func ExecuteJob(j Job) (core.Result, error) {
	return ExecuteJobContext(context.Background(), j)
}

// ExecuteJobContext builds and simulates one cell, honouring context
// cancellation between simulation strides.
func ExecuteJobContext(ctx context.Context, j Job) (core.Result, error) {
	as, gen, err := j.Spec.Build(workloads.BuildOptions{
		Policy: j.Policy,
		Seed:   j.Seed,
		Scale:  j.Scale,
	})
	if err != nil {
		return core.Result{}, fmt.Errorf("exper: building %s: %w", j.Spec.Name, err)
	}
	sim, err := core.NewSimulator(j.Params, as)
	if err != nil {
		return core.Result{}, fmt.Errorf("exper: %s/%v: %w", j.Spec.Name, j.Params.Kind, err)
	}
	res, err := sim.RunContext(ctx, gen, j.Instrs)
	if err != nil {
		return core.Result{}, fmt.Errorf("exper: %s/%v: %w", j.Spec.Name, j.Params.Kind, err)
	}
	return res, nil
}

// runJob routes a cell through the Options runner when one is set,
// threading the audit/injection options into the cell's parameters
// first so every simulation an experiment spawns is covered.
func runJob(j Job, opt Options) (core.Result, error) {
	if opt.Audit.Enabled {
		j.Params.Audit = opt.Audit
	}
	if opt.Inject.Kind != inject.None {
		j.Params.Fault = opt.Inject
	}
	if opt.Metrics != nil {
		j.Params.Metrics = opt.Metrics
	}
	if opt.Trace != nil {
		j.Params.Trace = opt.Trace
	}
	if opt.Runner != nil {
		return opt.Runner.RunCell(j)
	}
	return ExecuteJob(j)
}

// runOne builds the workload under the policy matching the configuration
// and simulates it with the given parameters.
func runOne(spec workloads.Spec, p core.Params, opt Options) (core.Result, error) {
	opt = opt.WithDefaults()
	return runJob(Job{
		Spec:   spec,
		Params: p,
		Policy: core.PolicyFor(p.Kind, 0.5),
		Instrs: opt.Instrs,
		Scale:  opt.Scale,
		Seed:   opt.Seed,
	}, opt)
}

// runConfig is runOne with default parameters for the kind.
func runConfig(spec workloads.Spec, kind core.ConfigKind, opt Options) (core.Result, error) {
	return runOne(spec, core.DefaultParams(kind), opt)
}

// pct formats a ratio as a percentage string.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// norm formats a value normalized to a baseline.
func norm(v, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v/base)
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
