package exper

import (
	"fmt"
	"strings"
	"testing"
)

// fastOpt keeps experiment tests quick: scaled-down footprints and short
// runs exercise every code path; shape assertions live in the calibrated
// full-scale runs (cmd/experiments, EXPERIMENTS.md).
var fastOpt = Options{Instrs: 400_000, Scale: 0.1, Seed: 7}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("fig10"); !ok {
		t.Error("fig10 should resolve")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs length mismatch")
	}
}

func TestStaticTables(t *testing.T) {
	// The pure-table experiments run instantly and need no simulation.
	for _, id := range []string{"table1", "table2", "table3", "table4"} {
		e, _ := ByID(id)
		tables, err := e.Run(Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s returned no tables", id)
		}
		for _, tb := range tables {
			md := tb.Markdown()
			if len(md) == 0 || !strings.Contains(md, "|") {
				t.Errorf("%s produced empty markdown", id)
			}
		}
	}
}

func TestTable2ContainsPaperValues(t *testing.T) {
	e, _ := ByID("table2")
	tables, _ := e.Run(Options{})
	md := tables[0].Markdown()
	for _, v := range []string{"5.865", "8.078", "174.171", "1.806"} {
		if !strings.Contains(md, v) {
			t.Errorf("table2 missing Table 2 value %s", v)
		}
	}
}

func TestFig2Fast(t *testing.T) {
	tables, err := fig2(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("fig2 returned %d tables", len(tables))
	}
	// 8 workloads + mean row.
	if len(tables[0].Rows) != 9 {
		t.Fatalf("fig2a rows = %d", len(tables[0].Rows))
	}
}

func TestFig3Fast(t *testing.T) {
	tables, err := fig3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Energy must be monotone non-decreasing as locality degrades.
	for _, row := range tables[0].Rows {
		prev := 0.0
		for _, cell := range row[1:] {
			var v float64
			if _, err := fmtSscan(cell, &v); err != nil {
				t.Fatalf("unparseable cell %q", cell)
			}
			if v+1e-9 < prev {
				t.Fatalf("fig3 row %s not monotone: %v", row[0], row)
			}
			prev = v
		}
	}
}

func TestFig4Fast(t *testing.T) {
	tables, err := fig4(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables[0].Rows) != 8*4 {
		t.Fatalf("fig4 rows = %d, want 32", len(tables[0].Rows))
	}
}

func TestFig10And11Fast(t *testing.T) {
	tables, err := fig10(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("fig10 tables = %d", len(tables))
	}
	t11, err := fig11(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(t11) != 2 || len(t11[0].Rows) != 8 {
		t.Fatalf("fig11 shape wrong")
	}
}

func TestTable5Fast(t *testing.T) {
	tables, err := table5(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	// Way shares per TLB must sum to ~100%.
	for _, row := range tables[0].Rows {
		for _, group := range [][]string{row[1:4], row[4:7], row[7:10]} {
			var sum float64
			for _, cell := range group {
				var v float64
				fmtSscan(strings.TrimSuffix(cell, "%"), &v)
				sum += v
			}
			if sum < 99 || sum > 101 {
				t.Errorf("way shares of %s sum to %.1f%%: %v", row[0], sum, group)
			}
		}
	}
	// Hit attributions must sum to ~100% per config.
	for _, row := range tables[1].Rows {
		var a, b, c, d float64
		fmtSscan(strings.TrimSuffix(row[1], "%"), &a)
		fmtSscan(strings.TrimSuffix(row[2], "%"), &b)
		fmtSscan(strings.TrimSuffix(row[3], "%"), &c)
		fmtSscan(strings.TrimSuffix(row[4], "%"), &d)
		if s := a + b; s < 99 || s > 101 {
			t.Errorf("%s TLB_Lite hit split sums to %.1f", row[0], s)
		}
		if s := c + d; s < 99 || s > 101 {
			t.Errorf("%s RMM_Lite hit split sums to %.1f", row[0], s)
		}
	}
}

func TestSensitivityAndAblationsFast(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	for _, id := range []string{"sens-interval", "sens-threshold", "sens-l1range", "abl-lite", "static"} {
		e, _ := ByID(id)
		tables, err := e.Run(fastOpt)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s produced an empty table", id)
			}
		}
	}
}

// fmtSscan wraps fmt.Sscanf for float parsing in tests.
func fmtSscan(s string, v *float64) (int, error) {
	return sscan(s, v)
}

func sscan(s string, v *float64) (int, error) {
	var f float64
	n, err := fmt.Sscanf(s, "%f", &f)
	*v = f
	return n, err
}
