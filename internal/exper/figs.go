package exper

import (
	"fmt"

	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// fig2 reproduces Figure 2: the dynamic-energy breakdown (a) and the
// TLB-miss cycles (b) of the 4KB, THP and RMM configurations, normalized
// per workload to 4KB.
func fig2(opt Options) ([]*stats.Table, error) {
	kinds := []core.ConfigKind{core.Cfg4KB, core.CfgTHP, core.CfgRMM}
	ta := stats.NewTable("Figure 2a — dynamic energy normalized to 4KB (breakdown of the 4KB bar)",
		"Workload", "4KB: L1 TLBs", "4KB: L2 TLB", "4KB: MMU cache", "4KB: walks", "THP", "RMM")
	tb := stats.NewTable("Figure 2b — cycles in TLB misses normalized to 4KB",
		"Workload", "4KB", "THP", "RMM")
	var thpE, rmmE, thpC, rmmC []float64
	for _, s := range workloads.TLBIntensive() {
		res := map[core.ConfigKind]core.Result{}
		for _, k := range kinds {
			r, err := runConfig(s, k, opt)
			if err != nil {
				return nil, err
			}
			res[k] = r
		}
		base := res[core.Cfg4KB]
		total := base.EnergyPJ()
		ta.AddRow(s.Name,
			pct(base.Energy.L1Total()/total),
			pct(base.Energy.Get(energy.AccL2Page)/total),
			pct(base.Energy.Get(energy.AccMMUCache)/total),
			pct(base.Energy.Get(energy.AccPageWalk)/total),
			norm(res[core.CfgTHP].EnergyPJ(), total),
			norm(res[core.CfgRMM].EnergyPJ(), total),
		)
		baseC := float64(base.CyclesTLBMiss)
		tb.AddRow(s.Name, "1.000",
			norm(float64(res[core.CfgTHP].CyclesTLBMiss), baseC),
			norm(float64(res[core.CfgRMM].CyclesTLBMiss), baseC))
		thpE = append(thpE, res[core.CfgTHP].EnergyPJ()/total)
		rmmE = append(rmmE, res[core.CfgRMM].EnergyPJ()/total)
		thpC = append(thpC, float64(res[core.CfgTHP].CyclesTLBMiss)/baseC)
		rmmC = append(rmmC, float64(res[core.CfgRMM].CyclesTLBMiss)/baseC)
	}
	ta.AddRow("mean", "", "", "", "", fmt.Sprintf("%.3f", stats.Mean(thpE)), fmt.Sprintf("%.3f", stats.Mean(rmmE)))
	tb.AddRow("mean", "1.000", fmt.Sprintf("%.3f", stats.Mean(thpC)), fmt.Sprintf("%.3f", stats.Mean(rmmC)))
	return []*stats.Table{ta, tb}, nil
}

// fig3 reproduces Figure 3: total dynamic energy with 4 KB pages as the
// page-walk references' L1-cache hit ratio degrades from 100% to 0%,
// normalized per workload to the 100% point.
func fig3(opt Options) ([]*stats.Table, error) {
	ratios := []float64{1.0, 0.75, 0.5, 0.25, 0.0}
	t := stats.NewTable("Figure 3 — dynamic energy vs walk L1-cache hit ratio (4KB pages, normalized to 100%)",
		"Workload", "100%", "75%", "50%", "25%", "0%")
	for _, s := range workloads.TLBIntensive() {
		row := []string{s.Name}
		var base float64
		for i, h := range ratios {
			p := core.DefaultParams(core.Cfg4KB)
			p.WalkL1HitRatio = h
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = r.EnergyPJ()
			}
			row = append(row, norm(r.EnergyPJ(), base))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}, nil
}

// fig4 reproduces Figure 4: L1 TLB MPKI over execution with the Base
// (4KB-only) configuration and THP configurations whose L1-4KB TLB is
// fixed at 64/4-way, 32/2-way and 16/1-way. Series are rendered as
// sparklines plus min/mean/max.
func fig4(opt Options) ([]*stats.Table, error) {
	opt = opt.WithDefaults()
	type cfg struct {
		label         string
		kind          core.ConfigKind
		entries, ways int
	}
	cfgs := []cfg{
		{"Base", core.Cfg4KB, 64, 4},
		{"64", core.CfgTHP, 64, 4},
		{"32", core.CfgTHP, 32, 2},
		{"16", core.CfgTHP, 16, 1},
	}
	t := stats.NewTable("Figure 4 — L1 TLB MPKI per 1M-instruction interval",
		"Workload", "Config", "Mean MPKI", "Min", "Max", "Timeline")
	for _, s := range workloads.TLBIntensive() {
		for _, c := range cfgs {
			p := core.DefaultParams(c.kind)
			p.L14KEntries, p.L14KWays = c.entries, c.ways
			p.SeriesIntervalInstrs = 1_000_000
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			ser := r.IntervalL1MPKI
			t.AddRow(s.Name, c.label,
				fmt.Sprintf("%.2f", ser.Mean()),
				fmt.Sprintf("%.2f", stats.Min(ser.Points)),
				fmt.Sprintf("%.2f", stats.Max(ser.Points)),
				ser.Sparkline(24))
		}
	}
	return []*stats.Table{t}, nil
}
