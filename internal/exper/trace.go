package exper

import (
	"fmt"

	"xlate/internal/core"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// TraceExperiment returns a dynamic experiment that characterizes one
// ingested trace segment (internal/tracec) across the paper's headline
// configurations — the fig2 trio plus TLB_Lite — the way every model
// workload is characterized. The cells are ordinary exper.Jobs with a
// trace-backed spec, so they flow through the harness, the audit
// oracle, and cluster dispatch unchanged; executing them requires a
// trace executor (harness.Config.Traces or the cluster's).
func TraceExperiment(ref string) Experiment {
	short := ref
	if len(short) > 12 {
		short = short[:12]
	}
	spec := workloads.TraceSpec(ref)
	return Experiment{
		ID:    "trace-" + short,
		Title: "Ingested trace " + short + " — translation energy and TLB behaviour across configurations",
		Run: func(opt Options) ([]*stats.Table, error) {
			kinds := []core.ConfigKind{core.Cfg4KB, core.CfgTHP, core.CfgTLBLite, core.CfgRMM}
			t := stats.NewTable("Ingested trace "+short+" (demand-paged replay)",
				"Config", "L1 MPKI", "L2 MPKI", "Walk refs", "Page faults", "pJ/access", "Energy vs 4KB")
			var base float64
			for _, k := range kinds {
				res, err := runConfig(spec, k, opt)
				if err != nil {
					return nil, fmt.Errorf("trace %s under %v: %w", short, k, err)
				}
				epr := res.EnergyPerRefPJ()
				if k == core.Cfg4KB {
					base = epr
				}
				t.AddRow(k.String(),
					fmt.Sprintf("%.3f", res.L1MPKI()),
					fmt.Sprintf("%.3f", res.L2MPKI()),
					fmt.Sprintf("%d", res.WalkRefs),
					fmt.Sprintf("%d", res.PageFaults),
					fmt.Sprintf("%.1f", epr),
					norm(epr, base))
			}
			return []*stats.Table{t}, nil
		},
	}
}
