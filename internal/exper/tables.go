package exper

import (
	"fmt"

	"xlate/internal/cactimodel"
	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// table1 reproduces Table 1: the simulated per-core TLB hierarchy (the
// Sandy Bridge baseline the paper uses; the Haswell/Broadwell columns of
// the original table document real products, not simulated targets).
func table1(Options) ([]*stats.Table, error) {
	t := stats.NewTable("Simulated per-core data-TLB hierarchy (Sandy Bridge baseline)",
		"Level", "Page size", "Entries", "Assoc.", "Present in configs")
	p := core.DefaultParams(core.CfgRMMLite)
	t.AddRowf("L1", "4 KB", p.L14KEntries, fmt.Sprintf("%d-way", p.L14KWays), "all")
	t.AddRowf("L1", "2 MB", p.L12MEntries, fmt.Sprintf("%d-way", p.L12MWays), "THP, TLB_Lite, RMM")
	t.AddRowf("L1", "1 GB", 4, "fully", "disabled (no 1 GB pages in workloads, §3.1 mask)")
	t.AddRowf("L1", "range", p.L1RangeEntries, "fully", "RMM_Lite")
	t.AddRowf("L2", "4 KB + 2 MB", p.L2Entries, fmt.Sprintf("%d-way", p.L2Ways), "all")
	t.AddRowf("L2", "range", p.L2RangeEntries, "fully", "RMM, RMM_Lite")

	m := stats.NewTable("MMU paging-structure caches (per Table 2)",
		"Structure", "Entries", "Assoc.")
	m.AddRowf("PDE cache", p.MMU.PDEEntries, fmt.Sprintf("%d-way", p.MMU.PDEWays))
	m.AddRowf("PDPTE cache", p.MMU.PDPTEEntries, "fully")
	m.AddRowf("PML4 cache", p.MMU.PML4Entries, "fully")
	return []*stats.Table{t, m}, nil
}

// table2 reproduces Table 2 (the energy database) and appends the
// analytical model's validation against it, so the error bars on
// synthesized values are visible.
func table2(Options) ([]*stats.Table, error) {
	db := energy.Table2()
	t := stats.NewTable("Dynamic energy and leakage (32 nm, Table 2; * = synthesized)",
		"Component", "Config", "Read (pJ)", "Write (pJ)", "Leakage (mW)")
	rows := []struct {
		name string
		ways int
		cfg  string
		syn  bool
	}{
		{energy.L14KB, 4, "64e 4-way", false},
		{energy.L14KB, 2, "32e 2-way", false},
		{energy.L14KB, 1, "16e 1-way", false},
		{energy.L12MB, 4, "32e 4-way", false},
		{energy.L12MB, 2, "16e 2-way", false},
		{energy.L12MB, 1, "8e 1-way", false},
		{energy.L1Range, 0, "4e fully", false},
		{energy.L11GB, 0, "4e fully", true},
		{energy.L2Page, 0, "512e 4-way", false},
		{energy.L2Range, 0, "32e fully", false},
		{energy.PDE, 0, "32e 2-way", false},
		{energy.PDPTE, 0, "4e fully", false},
		{energy.PML4, 0, "2e fully", false},
		{energy.L1Cache, 0, "32KB 8-way", false},
		{energy.L2Cache, 0, "256KB 8-way", true},
	}
	for _, r := range rows {
		c := db.Cost(r.name, r.ways)
		name := r.name
		if r.syn {
			name += " *"
		}
		t.AddRowf(name, r.cfg, c.ReadPJ, c.WritePJ, c.LeakMW)
	}

	v := stats.NewTable("Analytical model vs Table 2 (read energy)",
		"Component", "Model (pJ)", "Table 2 (pJ)", "Ratio")
	checks, err := cactimodel.ValidateAgainstTable2(db)
	if err != nil {
		return nil, err
	}
	for _, e := range checks {
		v.AddRowf(e.Name, e.ModelPJ, e.Table2PJ, fmt.Sprintf("%.2f×", e.RatioRead))
	}
	return []*stats.Table{t, v}, nil
}

// table3 prints golden evaluations of the Table 3 model equations so the
// implemented model can be inspected directly.
func table3(Options) ([]*stats.Table, error) {
	db := energy.Table2()
	t := stats.NewTable("Energy model golden values (Table 3: E = A·E_read + M·E_write)",
		"Quantity", "Expression", "Value")
	c4 := db.Cost(energy.L14KB, 4)
	t.AddRowf("L1-4KB TLB, 1000 lookups + 10 fills",
		"1000·5.865 + 10·6.858 pJ", fmt.Sprintf("%.1f pJ", 1000*c4.ReadPJ+10*c4.WritePJ))
	t.AddRowf("THP L1 probe (both structures)", "5.865 + 4.801 pJ",
		fmt.Sprintf("%.3f pJ", c4.ReadPJ+db.Cost(energy.L12MB, 4).ReadPJ))
	t.AddRowf("Full 4KB-page walk, all refs hit L1 cache", "4 · 174.171 pJ",
		fmt.Sprintf("%.3f pJ", 4*db.WalkRefCost(1)))
	t.AddRowf("Walk ref at 0% L1-cache locality", "E_L1 + E_L2 read",
		fmt.Sprintf("%.1f pJ", db.WalkRefCost(0)))

	p := stats.NewTable("Performance model golden values (Table 3)",
		"Event", "Cycles")
	p.AddRowf("L1 TLB hit (parallel with L1 dcache)", 0)
	p.AddRowf("L1 TLB miss → L2 TLB lookup", 7)
	p.AddRowf("L2 TLB miss → page walk", 50)
	p.AddRowf("1000 L1 misses of which 100 walk", 7*1000+50*100)
	return []*stats.Table{t, p}, nil
}

// table4 reproduces Table 4: workload suite, footprint, and model
// character.
func table4(Options) ([]*stats.Table, error) {
	t := stats.NewTable("TLB-intensive workloads (Table 4)",
		"Suite", "Application", "Memory", "Regions", "Phases")
	for _, s := range workloads.TLBIntensive() {
		t.AddRowf(s.Suite, s.Name, fmt.Sprintf("%d MB", s.FootprintBytes()>>20),
			len(s.Regions), len(s.Phases))
	}
	o := stats.NewTable("Remaining Spec2006/Parsec workload models (Figure 12 sets)",
		"Suite", "Application", "Memory")
	for _, s := range workloads.OtherSpec2006() {
		o.AddRowf(s.Suite, s.Name, fmt.Sprintf("%d MB", s.FootprintBytes()>>20))
	}
	for _, s := range workloads.OtherParsec() {
		o.AddRowf(s.Suite, s.Name, fmt.Sprintf("%d MB", s.FootprintBytes()>>20))
	}
	return []*stats.Table{t, o}, nil
}
