package exper

import (
	"context"
	"errors"
	"testing"
	"time"

	"xlate/internal/core"
	"xlate/internal/workloads"
)

// cancelJob is a cell big enough that it cannot finish before the test
// cancels it: a huge instruction budget over a small, fast-to-build
// footprint.
func cancelJob() Job {
	spec := workloads.Spec{
		Name: "cancel-probe", Suite: "test", InstrPerRef: 4,
		Regions: []workloads.RegionSpec{{Name: "heap", Bytes: 8 << 20}},
		Phases: []workloads.PhaseSpec{{Refs: 1 << 16, Access: []workloads.AccessSpec{
			{Region: 0, Weight: 1, Pattern: workloads.Uni},
		}}},
	}
	return Job{
		Spec:   spec,
		Params: core.DefaultParams(core.Cfg4KB),
		Policy: core.PolicyFor(core.Cfg4KB, 0.5),
		Instrs: 50_000_000_000,
		Scale:  1,
		Seed:   7,
	}
}

// TestExecuteJobContextCancelMidRun covers the satellite contract for
// the service daemon's forced drain: cancelling mid-simulation returns
// promptly with context.Canceled in the chain rather than running out
// the instruction budget.
func TestExecuteJobContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := ExecuteJobContext(ctx, cancelJob())
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run error = %v, want context.Canceled in the chain", err)
	}
	// 50 G instructions would run for minutes; a prompt return proves
	// the simulator polls cancellation between strides.
	if elapsed > 10*time.Second {
		t.Errorf("cancellation took %v, want a prompt return", elapsed)
	}
}

func TestExecuteJobContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteJobContext(ctx, cancelJob()); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run error = %v, want context.Canceled", err)
	}
}
