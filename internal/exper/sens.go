package exper

import (
	"fmt"

	"xlate/internal/cactimodel"
	"xlate/internal/core"
	"xlate/internal/energy"
	"xlate/internal/lite"
	"xlate/internal/stats"
	"xlate/internal/workloads"
)

// sensWorkloads is the subset used for parameter sweeps: the paper's
// phased workloads (where the interval and probability matter most)
// plus one steady one.
func sensWorkloads() []workloads.Spec {
	var out []workloads.Spec
	for _, name := range []string{"astar", "GemsFDTD", "mcf", "zeusmp"} {
		s, ok := workloads.ByName(name)
		if !ok {
			panic("exper: missing sensitivity workload " + name)
		}
		out = append(out, s)
	}
	return out
}

// sensInterval reproduces the §6.2 sweep: interval size 1 M–10 M
// instructions × random reactivation probability 1/8–1/128, reporting
// TLB_Lite energy savings vs THP and the miss-cycle cost.
func sensInterval(opt Options) ([]*stats.Table, error) {
	intervals := []uint64{1_000_000, 2_000_000, 5_000_000, 10_000_000}
	probs := []float64{1.0 / 8, 1.0 / 32, 1.0 / 128}
	t := stats.NewTable("§6.2 — Lite interval × reactivation-probability sweep (TLB_Lite, mean over phased workloads)",
		"Interval (instr)", "Prob", "Energy saved vs THP", "Miss cycles vs THP")
	specs := sensWorkloads()
	thp := make([]core.Result, len(specs))
	for i, s := range specs {
		r, err := runConfig(s, core.CfgTHP, opt)
		if err != nil {
			return nil, err
		}
		thp[i] = r
	}
	for _, iv := range intervals {
		for _, pr := range probs {
			var sav, cyc []float64
			for i, s := range specs {
				p := core.DefaultParams(core.CfgTLBLite)
				p.Lite.IntervalInstrs = iv
				p.Lite.ReactivateProb = pr
				r, err := runOne(s, p, opt)
				if err != nil {
					return nil, err
				}
				sav = append(sav, 1-r.EnergyPJ()/thp[i].EnergyPJ())
				cyc = append(cyc, float64(r.CyclesTLBMiss)/float64(thp[i].CyclesTLBMiss))
			}
			t.AddRow(fmt.Sprintf("%d", iv), fmt.Sprintf("1/%d", int(1/pr)),
				pct(stats.Mean(sav)), fmt.Sprintf("%.3f", stats.Mean(cyc)))
		}
	}
	return []*stats.Table{t}, nil
}

// sensThreshold implements the threshold study the paper defers to
// future work (§6.2): sweeping ε for both its relative (TLB_Lite) and
// absolute (RMM_Lite) forms.
func sensThreshold(opt Options) ([]*stats.Table, error) {
	specs := sensWorkloads()
	rel := []float64{0.03125, 0.0625, 0.125, 0.25, 0.5}
	abs := []float64{0.025, 0.05, 0.1, 0.2, 0.4}

	tRel := stats.NewTable("ε sweep — TLB_Lite (relative threshold), mean over workloads",
		"ε", "Energy saved vs THP", "L1 MPKI", "Miss cycles vs THP")
	thp := make([]core.Result, len(specs))
	for i, s := range specs {
		r, err := runConfig(s, core.CfgTHP, opt)
		if err != nil {
			return nil, err
		}
		thp[i] = r
	}
	for _, e := range rel {
		var sav, mpki, cyc []float64
		for i, s := range specs {
			p := core.DefaultParams(core.CfgTLBLite)
			p.Lite.Epsilon = lite.RelativeThreshold(e)
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			sav = append(sav, 1-r.EnergyPJ()/thp[i].EnergyPJ())
			mpki = append(mpki, r.L1MPKI())
			cyc = append(cyc, float64(r.CyclesTLBMiss)/float64(thp[i].CyclesTLBMiss))
		}
		tRel.AddRow(pct(e), pct(stats.Mean(sav)),
			fmt.Sprintf("%.2f", stats.Mean(mpki)), fmt.Sprintf("%.3f", stats.Mean(cyc)))
	}

	tAbs := stats.NewTable("ε sweep — RMM_Lite (absolute threshold), mean over workloads",
		"ε (MPKI)", "Energy saved vs THP", "L1 MPKI", "Lookups at 1 way")
	for _, e := range abs {
		var sav, mpki, oneWay []float64
		for i, s := range specs {
			p := core.DefaultParams(core.CfgRMMLite)
			p.Lite.Epsilon = lite.AbsoluteThreshold(e)
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			sav = append(sav, 1-r.EnergyPJ()/thp[i].EnergyPJ())
			mpki = append(mpki, r.L1MPKI())
			oneWay = append(oneWay, r.LiteLookupShare[0][0])
		}
		tAbs.AddRow(fmt.Sprintf("%.3f", e), pct(stats.Mean(sav)),
			fmt.Sprintf("%.3f", stats.Mean(mpki)), pct(stats.Mean(oneWay)))
	}
	return []*stats.Table{tRel, tAbs}, nil
}

// sensL1Range sweeps the L1-range TLB capacity (the paper fixes 4
// entries for L1 timing; this ablation quantifies what that choice
// costs), synthesizing energies for the non-Table-2 sizes by ratio
// scaling against the 4-entry anchor.
func sensL1Range(opt Options) ([]*stats.Table, error) {
	sizes := []int{2, 4, 8, 16}
	t := stats.NewTable("L1-range TLB size sweep (RMM_Lite, mean over TLB-intensive set)",
		"Entries", "Read energy (pJ)", "Energy saved vs THP", "Range share of L1 hits", "L1 MPKI")
	specs := workloads.TLBIntensive()
	thp := make([]core.Result, len(specs))
	for i, s := range specs {
		r, err := runConfig(s, core.CfgTHP, opt)
		if err != nil {
			return nil, err
		}
		thp[i] = r
	}
	anchorGeom := cactimodel.RangeTLBGeometry(4)
	for _, n := range sizes {
		db := energy.Table2()
		cost := db.Cost(energy.L1Range, 0)
		if n != 4 {
			scaled, err := cactimodel.ScaleFrom(cost, anchorGeom, cactimodel.RangeTLBGeometry(n))
			if err != nil {
				return nil, err
			}
			cost = scaled
			db.Register(energy.L1Range, 0, cost)
		}
		var sav, share, mpki []float64
		for i, s := range specs {
			p := core.DefaultParams(core.CfgRMMLite)
			p.L1RangeEntries = n
			p.EnergyDB = db
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			sav = append(sav, 1-r.EnergyPJ()/thp[i].EnergyPJ())
			share = append(share, float64(r.HitsRange)/float64(r.L1Hits()))
			mpki = append(mpki, r.L1MPKI())
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", cost.ReadPJ),
			pct(stats.Mean(sav)), pct(stats.Mean(share)), fmt.Sprintf("%.3f", stats.Mean(mpki)))
	}
	return []*stats.Table{t}, nil
}

// ablLite ablates the Lite mechanism's components (random reactivation,
// degradation response, downsizing itself) and runs the §4.4
// fully-associative variant, where Lite clusters LRU distances of a
// single fully associative L1 TLB as if there were ways.
func ablLite(opt Options) ([]*stats.Table, error) {
	specs := sensWorkloads()
	thp := make([]core.Result, len(specs))
	for i, s := range specs {
		r, err := runConfig(s, core.CfgTHP, opt)
		if err != nil {
			return nil, err
		}
		thp[i] = r
	}
	variants := []struct {
		name string
		mod  func(*core.Params)
	}{
		{"Lite (full mechanism)", func(*core.Params) {}},
		{"no random reactivation", func(p *core.Params) { p.Lite.DisableRandomReactivation = true }},
		{"no degradation response", func(p *core.Params) { p.Lite.DisableDegradationReactivation = true }},
		{"no downsizing (=THP)", func(p *core.Params) { p.Lite.DisableDownsizing = true }},
	}
	t := stats.NewTable("Lite component ablation (TLB_Lite, mean over phased workloads)",
		"Variant", "Energy saved vs THP", "L1 MPKI", "Miss cycles vs THP")
	for _, v := range variants {
		var sav, mpki, cyc []float64
		for i, s := range specs {
			p := core.DefaultParams(core.CfgTLBLite)
			v.mod(&p)
			r, err := runOne(s, p, opt)
			if err != nil {
				return nil, err
			}
			sav = append(sav, 1-r.EnergyPJ()/thp[i].EnergyPJ())
			mpki = append(mpki, r.L1MPKI())
			cyc = append(cyc, float64(r.CyclesTLBMiss)/float64(thp[i].CyclesTLBMiss))
		}
		t.AddRow(v.name, pct(stats.Mean(sav)),
			fmt.Sprintf("%.2f", stats.Mean(mpki)), fmt.Sprintf("%.3f", stats.Mean(cyc)))
	}

	// §4.4 fully-associative variant: a single fully associative 64-entry
	// L1 TLB; Lite resizes it in powers of two. Costs for the FA sizes
	// are synthesized from the CAM model anchored at the L1-range TLB.
	fa := stats.NewTable("§4.4 fully-associative L1 variant (4KB pages only; Lite clusters LRU distances)",
		"Workload", "Energy saved vs fixed FA", "Mean active size", "L1 MPKI delta")
	db := energy.Table2()
	anchor := db.Cost(energy.L1Range, 0)
	for w := 1; w <= 64; w *= 2 {
		g := cactimodel.Geometry{Entries: w, CAM: true, TagBits: 36, DataBits: 40}
		cost, err := cactimodel.ScaleFrom(anchor, cactimodel.RangeTLBGeometry(4), g)
		if err != nil {
			return nil, err
		}
		db.Register(energy.L14KB, w, cost)
	}
	for _, s := range specs {
		mk := func(withLite bool) (core.Result, error) {
			kind := core.Cfg4KB
			if withLite {
				kind = core.CfgTLBLite
			}
			p := core.DefaultParams(kind)
			p.Kind = kind
			p.L14KEntries, p.L14KWays = 64, 64
			p.L12MEntries, p.L12MWays = 32, 4
			p.EnergyDB = db
			if withLite {
				// FA Lite on 4KB pages only: run the TLB_Lite machinery
				// over a 4KB-page address space by zeroing THP coverage.
				o := opt.WithDefaults()
				return runJob(Job{
					Spec:   s,
					Params: p,
					Policy: core.PolicyFor(core.Cfg4KB, 0),
					Instrs: o.Instrs,
					Scale:  o.Scale,
					Seed:   o.Seed,
				}, o)
			}
			return runOne(s, p, opt)
		}
		fixed, err := mk(false)
		if err != nil {
			return nil, err
		}
		adaptive, err := mk(true)
		if err != nil {
			return nil, err
		}
		meanSize := 0.0
		for k, share := range adaptive.LiteLookupShare[0] {
			meanSize += share * float64(int(1)<<k)
		}
		fa.AddRow(s.Name,
			pct(1-adaptive.EnergyPJ()/fixed.EnergyPJ()),
			fmt.Sprintf("%.1f entries", meanSize),
			fmt.Sprintf("%+.2f", adaptive.L1MPKI()-fixed.L1MPKI()))
	}
	return []*stats.Table{t, fa}, nil
}

// static estimates the §6.2 extension: leakage power saved in the
// L1-page TLBs when disabled ways are power-gated (Albonesi [8] with
// gated-Vdd [44]), using Table 2's leakage column weighted by the
// measured active-way occupancy.
func static(opt Options) ([]*stats.Table, error) {
	t := stats.NewTable("Static energy extension — L1 TLB leakage with power-gated disabled ways",
		"Workload", "Config", "Full leakage (mW)", "Gated leakage (mW)", "Saved")
	db := energy.Table2()
	leakAt := func(name string, share []float64) float64 {
		var mw float64
		for k, f := range share {
			mw += f * db.Cost(name, 1<<k).LeakMW
		}
		return mw
	}
	for _, s := range workloads.TLBIntensive() {
		lite, err := runConfig(s, core.CfgTLBLite, opt)
		if err != nil {
			return nil, err
		}
		rl, err := runConfig(s, core.CfgRMMLite, opt)
		if err != nil {
			return nil, err
		}
		full := db.Cost(energy.L14KB, 4).LeakMW + db.Cost(energy.L12MB, 4).LeakMW
		gated := leakAt(energy.L14KB, lite.LiteLookupShare[0]) +
			leakAt(energy.L12MB, lite.LiteLookupShare[1])
		t.AddRow(s.Name, "TLB_Lite",
			fmt.Sprintf("%.4f", full), fmt.Sprintf("%.4f", gated), pct(1-gated/full))

		fullR := db.Cost(energy.L14KB, 4).LeakMW
		gatedR := leakAt(energy.L14KB, rl.LiteLookupShare[0])
		t.AddRow(s.Name, "RMM_Lite",
			fmt.Sprintf("%.4f", fullR), fmt.Sprintf("%.4f", gatedR), pct(1-gatedR/fullR))
	}
	return []*stats.Table{t}, nil
}
