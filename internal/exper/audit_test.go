package exper

import (
	"errors"
	"testing"

	"xlate/internal/audit"
	"xlate/internal/audit/inject"
	"xlate/internal/core"
	"xlate/internal/workloads"
)

// auditSpec is a small, fast workload for option-threading tests. The
// 64 KB footprint fits entirely in the L1-4KB TLB, so a corrupted entry
// stays resident until an audit scans it instead of racing eviction.
var auditSpec = workloads.Spec{
	Name: "audit-tiny", Suite: "test", InstrPerRef: 4,
	Regions: []workloads.RegionSpec{{Name: "heap", Bytes: 64 << 10}},
	Phases: []workloads.PhaseSpec{{Refs: 1 << 16, Access: []workloads.AccessSpec{
		{Region: 0, Weight: 1, Pattern: workloads.Uni},
	}}},
}

// TestOptionsThreadAuditAndInject proves the experiment funnel threads
// Options.Audit and Options.Inject into every cell: an audited run is
// clean and reports sampling stats, and an injected fault fails the
// cell with a typed audit.ViolationError.
func TestOptionsThreadAuditAndInject(t *testing.T) {
	opt := Options{Instrs: 200_000, Scale: 1, Seed: 7,
		Audit: audit.Config{Enabled: true, SampleEvery: 1}}

	res, err := runConfig(auditSpec, core.Cfg4KB, opt)
	if err != nil {
		t.Fatalf("clean audited cell failed: %v", err)
	}
	if res.Audit.Sampled == 0 || res.Audit.Violations != 0 {
		t.Fatalf("audit stats not threaded through the funnel: %+v", res.Audit)
	}

	opt.Inject = inject.Fault{Kind: inject.FlipPFN, AfterRefs: 1000}
	_, err = runConfig(auditSpec, core.Cfg4KB, opt)
	if err == nil {
		t.Fatal("injected fault went undetected through the experiment funnel")
	}
	var v *audit.ViolationError
	if !errors.As(err, &v) {
		t.Fatalf("cell error is not a ViolationError: %v", err)
	}
}
