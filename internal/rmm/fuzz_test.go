package rmm

import (
	"testing"

	"xlate/internal/addr"
)

// FuzzRangeTable inserts and removes ranges decoded from fuzz bytes;
// the table must reject overlaps, keep its ordering invariant, and
// resolve every surviving range.
func FuzzRangeTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 192 {
			ops = ops[:192]
		}
		rt := NewRangeTable()
		for i := 0; i+2 < len(ops); i += 3 {
			start := addr.VA(uint64(ops[i]) << 20)
			size := (uint64(ops[i+1]%64) + 1) << 16
			pa := addr.PA(uint64(ops[i+2]) << 24)
			if ops[i]%5 == 4 {
				rt.Remove(start) // may fail; must not corrupt
			} else {
				rt.Insert(Range{Start: start, End: start + addr.VA(size), PABase: pa})
			}
			if err := rt.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		for _, r := range rt.Ranges() {
			got, ok := rt.Lookup(r.Start)
			if !ok || !got.Contains(r.Start) {
				t.Fatalf("resident range unresolvable: %+v", r)
			}
		}
	})
}
