package rmm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xlate/internal/addr"
)

func r(startKB, sizeKB, paKB uint64) Range {
	return Range{
		Start:  addr.VA(startKB << 10),
		End:    addr.VA((startKB + sizeKB) << 10),
		PABase: addr.PA(paKB << 10),
	}
}

func TestInsertLookup(t *testing.T) {
	rt := NewRangeTable()
	if err := rt.Insert(r(0, 64, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Insert(r(1024, 128, 4096)); err != nil {
		t.Fatal(err)
	}
	got, ok := rt.Lookup(addr.VA(32 << 10))
	if !ok || got.PABase != addr.PA(1024<<10) {
		t.Fatalf("Lookup = %+v ok=%v", got, ok)
	}
	if _, ok := rt.Lookup(addr.VA(512 << 10)); ok {
		t.Fatal("gap between ranges should miss")
	}
	if err := rt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertErrors(t *testing.T) {
	rt := NewRangeTable()
	if err := rt.Insert(Range{Start: 100, End: 100}); err == nil {
		t.Fatal("empty range should fail")
	}
	if err := rt.Insert(Range{Start: 0x1234, End: 0x5000}); err == nil {
		t.Fatal("misaligned range should fail")
	}
	if err := rt.Insert(r(0, 64, 0)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Insert(r(32, 64, 9999)); err == nil {
		t.Fatal("overlapping insert should fail")
	}
}

func TestMergeContiguous(t *testing.T) {
	rt := NewRangeTable()
	// VA-adjacent AND PA-adjacent: merges.
	rt.Insert(r(0, 64, 0))
	rt.Insert(r(64, 64, 64))
	if rt.Len() != 1 {
		t.Fatalf("Len after contiguous insert = %d, want 1 (merged)", rt.Len())
	}
	got, _ := rt.Lookup(addr.VA(100 << 10))
	if got.Bytes() != 128<<10 {
		t.Fatalf("merged range size = %d", got.Bytes())
	}
	// VA-adjacent but PA-discontiguous: no merge.
	rt.Insert(r(128, 64, 9000))
	if rt.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (no merge across PA discontinuity)", rt.Len())
	}
	// Filling a gap that is contiguous on both sides merges all three.
	rt2 := NewRangeTable()
	rt2.Insert(r(0, 64, 0))
	rt2.Insert(r(128, 64, 128))
	rt2.Insert(r(64, 64, 64))
	if rt2.Len() != 1 {
		t.Fatalf("three-way merge: Len = %d, want 1", rt2.Len())
	}
	if rt2.CoveredBytes() != 192<<10 {
		t.Fatalf("CoveredBytes = %d", rt2.CoveredBytes())
	}
}

func TestRemove(t *testing.T) {
	rt := NewRangeTable()
	rt.Insert(r(0, 64, 0))
	rt.Insert(r(1024, 64, 1024))
	if err := rt.Remove(addr.VA(1024 << 10)); err != nil {
		t.Fatal(err)
	}
	if rt.Len() != 1 {
		t.Fatalf("Len = %d", rt.Len())
	}
	if err := rt.Remove(addr.VA(1024 << 10)); err == nil {
		t.Fatal("removing absent range should fail")
	}
}

func TestWalkCostGrowsWithTableSize(t *testing.T) {
	rt := NewRangeTable()
	if rt.WalkRefs() != 1 {
		t.Fatalf("empty table walk refs = %d, want 1", rt.WalkRefs())
	}
	// Insert ranges that cannot merge (PA-discontiguous).
	for i := uint64(0); i < 64; i++ {
		if err := rt.Insert(r(i*128, 64, i*1000)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Len() != 64 {
		t.Fatalf("Len = %d", rt.Len())
	}
	if got := rt.WalkRefs(); got != 2 {
		t.Fatalf("64-range table walk refs = %d, want 2 (fanout-8 B-tree)", got)
	}
	for i := uint64(64); i < 100; i++ {
		rt.Insert(r(i*128, 64, i*1000))
	}
	if got := rt.WalkRefs(); got != 3 {
		t.Fatalf("100-range table walk refs = %d, want 3", got)
	}
}

func TestWalkAccounting(t *testing.T) {
	rt := NewRangeTable()
	rt.Insert(r(0, 64, 0))
	rr, refs, ok := rt.Walk(addr.VA(10 << 10))
	if !ok || refs != 1 || !rr.Contains(addr.VA(10<<10)) {
		t.Fatalf("Walk = %+v refs=%d ok=%v", rr, refs, ok)
	}
	if _, _, ok := rt.Walk(addr.VA(1 << 30)); ok {
		t.Fatal("walk outside any range should miss")
	}
	walks, total := rt.Stats()
	if walks != 2 || total != 2 {
		t.Fatalf("Stats = %d walks %d refs", walks, total)
	}
}

func TestRangesCopyIsolated(t *testing.T) {
	rt := NewRangeTable()
	rt.Insert(r(0, 64, 0))
	got := rt.Ranges()
	got[0].Start = 0xdead000
	if rr, _ := rt.Lookup(addr.VA(0)); rr.Start != 0 {
		t.Fatal("Ranges() must return a copy")
	}
}

// Property: after inserting random non-overlapping PA-discontiguous
// ranges, every address inside some range resolves to it, every address
// outside misses, and invariants hold.
func TestQuickLookupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := NewRangeTable()
		type placed struct{ rr Range }
		var all []placed
		for i := 0; i < 40; i++ {
			slot := uint64(rng.Intn(64))
			size := uint64(1+rng.Intn(200)) * addr.Bytes4K // up to ~800KB in a 1MB... keep below slot pitch
			if size > 60<<20 {
				size = 60 << 20
			}
			start := addr.VA(slot * 64 << 20) // 64MB pitch
			rr := Range{Start: start, End: start + addr.VA(size), PABase: addr.PA((uint64(i) + 1) * 1 << 30)}
			err := rt.Insert(rr)
			dup := false
			for _, p := range all {
				if p.rr.Start == rr.Start {
					dup = true
				}
			}
			if dup {
				if err == nil {
					return false // overlap must be rejected
				}
				continue
			}
			if err != nil {
				return false
			}
			all = append(all, placed{rr})
		}
		if rt.CheckInvariants() != nil {
			return false
		}
		for _, p := range all {
			probe := p.rr.Start + addr.VA(rng.Int63n(int64(p.rr.Bytes())))
			got, ok := rt.Lookup(probe)
			if !ok || !got.Contains(probe) {
				return false
			}
			if got.Translate(probe) != p.rr.Translate(probe) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	rt := NewRangeTable()
	rt.Insert(r(0, 64, 0))
	rt.Walk(addr.VA(10 << 10))
	c := rt.Clone()
	if c.Len() != 1 {
		t.Fatal("clone should copy contents")
	}
	if w, _ := c.Stats(); w != 0 {
		t.Fatal("clone should reset statistics")
	}
	// Clones are independent.
	c.Insert(r(1024, 64, 1024))
	if rt.Len() != 1 {
		t.Fatal("clone mutation leaked into the original")
	}
}
