package rmm

import (
	"testing"

	"xlate/internal/addr"
)

// TestCheckInvariantsAllocFree pins the property the runtime auditor
// depends on: invariant checking over a populated range table allocates
// nothing, so in-run audits cannot perturb GC behaviour.
func TestCheckInvariantsAllocFree(t *testing.T) {
	rt := NewRangeTable()
	for i := 0; i < 128; i++ {
		base := addr.VA(i) << 24
		if err := rt.Insert(Range{
			Start:  base,
			End:    base + addr.VA(4<<20),
			PABase: addr.PA(i) << 24,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var err error
	if n := testing.AllocsPerRun(100, func() {
		err = rt.CheckInvariants()
	}); n != 0 {
		t.Errorf("CheckInvariants allocates %.1f times per run", n)
	}
	if err != nil {
		t.Fatal(err)
	}
}
