// Package rmm implements the Redundant Memory Mappings substrate
// (Karakostas et al., ISCA 2015) that the paper's RMM and RMM_Lite
// configurations build on: range translations and the software-managed
// per-process range table.
//
// A range translation maps an arbitrarily large range of pages that are
// contiguous in both virtual and physical address space with uniform
// protection. Ranges are *redundant*: every page inside a range is also
// mapped by the ordinary page table, so the hardware can always fall
// back to paging. The OS (internal/vm) populates the range table at
// allocation time through eager paging.
//
// On an L2 TLB miss the hardware performs the page walk as usual and, in
// parallel, a *background* range-table walk; a hit refills the L2-range
// TLB. The background walk adds no cycles but does add dynamic energy
// for its memory references (paper §5), which WalkRefs models as a
// B-tree descent.
package rmm

import (
	"fmt"
	"sort"

	"xlate/internal/addr"
	"xlate/internal/tlb"
)

// Range is one range translation. The type aliases the range-TLB entry:
// the table stores exactly what the TLBs cache.
type Range = tlb.RangeEntry

// btreeFanout is the modeled fanout of the range table's B-tree: one
// 64-byte cache line holds about four (start, end, offset) triples, and
// the RMM design packs two lines per node.
const btreeFanout = 8

// RangeTable is a process's software-managed range table. The reference
// implementation stores ranges sorted by start address; lookup cost in
// memory references is modeled as a B-tree descent of the equivalent
// height (WalkRefs).
type RangeTable struct {
	ranges []Range // sorted by Start, non-overlapping
	walks  uint64  // background walks performed
	refs   uint64  // memory references those walks cost
}

// NewRangeTable returns an empty range table.
func NewRangeTable() *RangeTable { return &RangeTable{} }

// Len returns the number of range translations in the table.
func (rt *RangeTable) Len() int { return len(rt.ranges) }

// Insert adds a range translation. Ranges must be page aligned,
// non-empty, and must not overlap an existing range. Adjacent ranges
// that are contiguous in both address spaces are merged, mirroring the
// RMM operating-system design's range coalescing.
func (rt *RangeTable) Insert(r Range) error {
	if r.End <= r.Start {
		return fmt.Errorf("rmm: empty or inverted range [%#x,%#x)", uint64(r.Start), uint64(r.End))
	}
	if !addr.IsAligned(uint64(r.Start), addr.Bytes4K) || !addr.IsAligned(uint64(r.End), addr.Bytes4K) ||
		!addr.IsAligned(uint64(r.PABase), addr.Bytes4K) {
		return fmt.Errorf("rmm: range [%#x,%#x)→%#x not page aligned",
			uint64(r.Start), uint64(r.End), uint64(r.PABase))
	}
	i := sort.Search(len(rt.ranges), func(i int) bool { return rt.ranges[i].End > r.Start })
	if i < len(rt.ranges) && rt.ranges[i].Start < r.End {
		o := rt.ranges[i]
		return fmt.Errorf("rmm: range [%#x,%#x) overlaps [%#x,%#x)",
			uint64(r.Start), uint64(r.End), uint64(o.Start), uint64(o.End))
	}
	// Merge with the predecessor and/or successor when contiguous in
	// both spaces.
	if i > 0 {
		p := rt.ranges[i-1]
		if p.End == r.Start && p.Translate(p.End-1)+1 == r.PABase {
			r = Range{Start: p.Start, End: r.End, PABase: p.PABase}
			i--
			rt.ranges = append(rt.ranges[:i], rt.ranges[i+1:]...)
		}
	}
	if i < len(rt.ranges) {
		n := rt.ranges[i]
		if r.End == n.Start && r.Translate(r.End-1)+1 == n.PABase {
			r = Range{Start: r.Start, End: n.End, PABase: r.PABase}
			rt.ranges = append(rt.ranges[:i], rt.ranges[i+1:]...)
		}
	}
	rt.ranges = append(rt.ranges, Range{})
	copy(rt.ranges[i+1:], rt.ranges[i:])
	rt.ranges[i] = r
	return nil
}

// Remove deletes the range starting at start.
func (rt *RangeTable) Remove(start addr.VA) error {
	i := sort.Search(len(rt.ranges), func(i int) bool { return rt.ranges[i].Start >= start })
	if i == len(rt.ranges) || rt.ranges[i].Start != start {
		return fmt.Errorf("rmm: no range starts at %#x", uint64(start))
	}
	rt.ranges = append(rt.ranges[:i], rt.ranges[i+1:]...)
	return nil
}

// Lookup finds the range containing va without charging a walk. Used by
// the OS, the hardware walk path, and tests. The binary search is open-
// coded rather than sort.Search so the per-walk path stays closure-free.
func (rt *RangeTable) Lookup(va addr.VA) (Range, bool) {
	// Find the first range with End > va.
	lo, hi := 0, len(rt.ranges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rt.ranges[mid].End > va {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo < len(rt.ranges) && rt.ranges[lo].Contains(va) {
		return rt.ranges[lo], true
	}
	return Range{}, false
}

// Walk performs a background range-table walk for va: it returns the
// containing range (if any) and the number of memory references the
// hardware walker spent descending the table's B-tree. The references
// are also accumulated in the table's statistics.
//
//eeat:hotpath
func (rt *RangeTable) Walk(va addr.VA) (Range, int, bool) {
	refs := rt.WalkRefs()
	rt.walks++
	rt.refs += uint64(refs)
	r, ok := rt.Lookup(va)
	return r, refs, ok
}

// WalkRefs returns the memory-reference cost of one range-table walk at
// the table's current size: the height of a B-tree with the modeled
// fanout, minimum one reference.
func (rt *RangeTable) WalkRefs() int {
	n := len(rt.ranges)
	if n <= 1 {
		return 1
	}
	// ceil(log_fanout(n)) computed in integers.
	h := 1
	reach := btreeFanout
	for reach < n {
		reach *= btreeFanout
		h++
	}
	return h
}

// Stats returns the cumulative background-walk count and their total
// memory references.
func (rt *RangeTable) Stats() (walks, refs uint64) { return rt.walks, rt.refs }

// Ranges returns a copy of the table contents in address order.
func (rt *RangeTable) Ranges() []Range {
	out := make([]Range, len(rt.ranges))
	copy(out, rt.ranges)
	return out
}

// CoveredBytes returns the total bytes covered by range translations.
func (rt *RangeTable) CoveredBytes() uint64 {
	var b uint64
	for _, r := range rt.ranges {
		b += r.Bytes()
	}
	return b
}

// CheckInvariants verifies ordering and non-overlap. It is production
// API — the runtime auditor in internal/audit calls it on a fixed
// cadence during simulation — and is allocation-free.
func (rt *RangeTable) CheckInvariants() error {
	for i := 1; i < len(rt.ranges); i++ {
		if rt.ranges[i-1].End > rt.ranges[i].Start {
			return fmt.Errorf("rmm: ranges %d and %d out of order or overlapping", i-1, i)
		}
	}
	return nil
}

// MinRangeBytes is the smallest allocation worth a range translation:
// RMM only creates ranges for regions spanning multiple pages.
const MinRangeBytes = 2 * addr.Bytes4K

// Clone returns an independent snapshot of the table: same range
// translations, fresh statistics. Per-core simulators walk private
// clones so background-walk accounting is core-local and data-race-free
// while the OS-visible table stays shared.
func (rt *RangeTable) Clone() *RangeTable {
	return &RangeTable{ranges: append([]Range(nil), rt.ranges...)}
}
