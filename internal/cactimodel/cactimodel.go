// Package cactimodel is a small analytical SRAM/CAM energy model in the
// spirit of Cacti (Li et al., ICCAD 2011), used to price structures the
// paper's Table 2 does not list: the L2 data cache (Figure 3's
// walk-locality sweep), alternative range-TLB sizes (the L1-range size
// ablation), and any custom structure a user configures.
//
// The model is deliberately simple — first-order wordline/bitline/
// matchline terms with constants fitted to Table 2's 32 nm data points —
// and it is used in two modes:
//
//  1. Estimate: absolute pJ figures. Validated against Table 2 to be
//     within a small factor (see ValidateAgainstTable2); good enough for
//     structures whose energy only needs to be on the right scale.
//  2. ScaleFrom: ratio scaling of a known anchor cost. Model error
//     largely cancels in the ratio, so costs synthesized for a size
//     sweep stay consistent with the Table 2 anchor.
package cactimodel

import (
	"errors"
	"fmt"
	"math"

	"xlate/internal/energy"
)

// ErrInvalidGeometry is wrapped by every Geometry validation failure, so
// callers can classify model-build errors with errors.Is.
var ErrInvalidGeometry = errors.New("invalid structure geometry")

// Geometry describes one lookup structure.
type Geometry struct {
	Entries  int  // total entries
	Ways     int  // associativity; ignored when CAM
	TagBits  int  // tag (or search-key) width
	DataBits int  // payload width
	CAM      bool // fully associative content-addressable search
}

// Validate reports whether the geometry is well formed. Every failure
// wraps ErrInvalidGeometry.
func (g Geometry) Validate() error {
	if g.Entries <= 0 {
		return fmt.Errorf("cactimodel: %w: entries %d must be positive", ErrInvalidGeometry, g.Entries)
	}
	if g.TagBits <= 0 || g.DataBits < 0 {
		return fmt.Errorf("cactimodel: %w: bad bit widths tag=%d data=%d", ErrInvalidGeometry, g.TagBits, g.DataBits)
	}
	if !g.CAM {
		if g.Ways <= 0 || g.Entries%g.Ways != 0 {
			return fmt.Errorf("cactimodel: %w: bad associativity %d for %d entries", ErrInvalidGeometry, g.Ways, g.Entries)
		}
	}
	return nil
}

// Fitted 32 nm constants (picojoules). The SRAM read constants come from
// solving the L1-4KB (16 sets × 4 ways) and L1-2MB (8 sets × 4 ways)
// Table 2 anchors; the CAM constants from the PML4/PDPTE/L1-range
// anchors with a sublinear matchline exponent.
const (
	sramBitBase    = 0.01714  // pJ per bit read, zero-row intercept
	sramBitPerSet  = 0.000201 // pJ per bit read per row (bitline length)
	sramWriteScale = 1.20     // write ≈ 1.2× read for small SRAM (Table 2 trend)

	camMatchPerBit = 0.0180 // pJ per entry^camExp per search bit
	camExp         = 0.55   // matchline banking exponent
	camReadoutBit  = 0.0094 // pJ per payload bit read out
	camWriteScale  = 0.60   // CAM fills skip the search: write < read (Table 2 trend)

	leakPerBitMW = 0.000062 // leakage per storage bit, fitted to L1-4KB
)

// Estimate returns the absolute cost of the structure, or an error
// wrapping ErrInvalidGeometry for a malformed geometry.
func Estimate(g Geometry) (energy.Cost, error) {
	if err := g.Validate(); err != nil {
		return energy.Cost{}, err
	}
	bits := float64(g.TagBits + g.DataBits)
	storage := float64(g.Entries) * bits
	leak := storage * leakPerBitMW
	if g.CAM {
		search := math.Pow(float64(g.Entries), camExp) * float64(g.TagBits) * camMatchPerBit
		read := search + float64(g.DataBits)*camReadoutBit
		return energy.Cost{
			ReadPJ:  read,
			WritePJ: read * camWriteScale,
			LeakMW:  leak,
		}, nil
	}
	sets := g.Entries / g.Ways
	perBit := sramBitBase + sramBitPerSet*float64(sets)
	read := float64(g.Ways) * bits * perBit
	return energy.Cost{
		ReadPJ:  read,
		WritePJ: read * sramWriteScale,
		LeakMW:  leak,
	}, nil
}

// ScaleFrom synthesizes the cost of target by scaling a known anchor
// cost by the model's predicted ratio. Both geometries must be valid.
func ScaleFrom(anchorCost energy.Cost, anchor, target Geometry) (energy.Cost, error) {
	a, err := Estimate(anchor)
	if err != nil {
		return energy.Cost{}, fmt.Errorf("cactimodel: anchor: %w", err)
	}
	t, err := Estimate(target)
	if err != nil {
		return energy.Cost{}, fmt.Errorf("cactimodel: target: %w", err)
	}
	return energy.Cost{
		ReadPJ:  anchorCost.ReadPJ * t.ReadPJ / a.ReadPJ,
		WritePJ: anchorCost.WritePJ * t.WritePJ / a.WritePJ,
		LeakMW:  anchorCost.LeakMW * t.LeakMW / a.LeakMW,
	}, nil
}

// Standard geometries for the structures this repo synthesizes costs
// for. Tag widths assume 48-bit virtual addresses.

// PageTLBGeometry returns the geometry of a page TLB for 4 KB pages.
func PageTLBGeometry(entries, ways int) Geometry {
	g := Geometry{Entries: entries, Ways: ways, TagBits: 36, DataBits: 40}
	if ways == entries {
		g.CAM = true
	}
	return g
}

// RangeTLBGeometry returns the geometry of a fully associative range TLB
// with double-width tags (two bound comparisons per entry, paper §5).
func RangeTLBGeometry(entries int) Geometry {
	return Geometry{Entries: entries, CAM: true, TagBits: 72, DataBits: 52}
}

// DataCacheGeometry returns the geometry of a data cache with 64-byte
// lines.
func DataCacheGeometry(bytes, ways int) Geometry {
	lines := bytes / 64
	return Geometry{Entries: lines, Ways: ways, TagBits: 24, DataBits: 512}
}

// anchor couples a Table 2 entry with its geometry for validation.
type anchor struct {
	name string
	ways int
	geom Geometry
}

func table2Anchors() []anchor {
	return []anchor{
		{energy.L14KB, 4, PageTLBGeometry(64, 4)},
		// 2 MB pages have a 27-bit VPN; 3 set bits leave a 24-bit tag.
		{energy.L12MB, 4, Geometry{Entries: 32, Ways: 4, TagBits: 24, DataBits: 40}},
		{energy.L2Page, 0, Geometry{Entries: 512, Ways: 4, TagBits: 29, DataBits: 40}},
		{energy.PDE, 0, Geometry{Entries: 32, Ways: 2, TagBits: 23, DataBits: 40}},
		{energy.PDPTE, 0, Geometry{Entries: 4, CAM: true, TagBits: 18, DataBits: 40}},
		{energy.PML4, 0, Geometry{Entries: 2, CAM: true, TagBits: 9, DataBits: 40}},
		{energy.L1Range, 0, RangeTLBGeometry(4)},
		{energy.L2Range, 0, RangeTLBGeometry(32)},
		{energy.L1Cache, 0, DataCacheGeometry(32<<10, 8)},
	}
}

// ValidationError describes one anchor's deviation from Table 2.
type ValidationError struct {
	Name      string
	Ways      int
	ModelPJ   float64
	Table2PJ  float64
	RatioRead float64 // model / table2
}

// ValidateAgainstTable2 compares the model's absolute estimates against
// every Table 2 anchor and returns the per-anchor read-energy ratios.
// The experiment harness prints these so the synthesized values' error
// bars are visible next to the results that depend on them.
func ValidateAgainstTable2(db *energy.DB) ([]ValidationError, error) {
	var out []ValidationError
	for _, a := range table2Anchors() {
		ref := db.Cost(a.name, a.ways)
		est, err := Estimate(a.geom)
		if err != nil {
			return nil, fmt.Errorf("cactimodel: anchor %s: %w", a.name, err)
		}
		out = append(out, ValidationError{
			Name:      a.name,
			Ways:      a.ways,
			ModelPJ:   est.ReadPJ,
			Table2PJ:  ref.ReadPJ,
			RatioRead: est.ReadPJ / ref.ReadPJ,
		})
	}
	return out, nil
}
