package cactimodel

import (
	"errors"
	"testing"

	"xlate/internal/energy"
)

func TestGeometryValidation(t *testing.T) {
	good := []Geometry{
		PageTLBGeometry(64, 4),
		RangeTLBGeometry(4),
		DataCacheGeometry(32<<10, 8),
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", g, err)
		}
	}
	bad := []Geometry{
		{Entries: 0, TagBits: 10, Ways: 1},
		{Entries: 4, TagBits: 0, Ways: 1},
		{Entries: 4, TagBits: 10, DataBits: -1, Ways: 1},
		{Entries: 64, Ways: 3, TagBits: 10}, // 64 % 3 != 0
		{Entries: 64, Ways: 0, TagBits: 10},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", g)
		}
	}
}

func TestEstimateRejectsInvalid(t *testing.T) {
	if _, err := Estimate(Geometry{}); !errors.Is(err, ErrInvalidGeometry) {
		t.Fatalf("Estimate of invalid geometry = %v, want ErrInvalidGeometry", err)
	}
	if _, err := ScaleFrom(energy.Cost{}, Geometry{}, RangeTLBGeometry(4)); !errors.Is(err, ErrInvalidGeometry) {
		t.Fatalf("ScaleFrom with invalid anchor = %v, want ErrInvalidGeometry", err)
	}
}

// mustEstimate unwraps Estimate for geometries the test knows are valid.
func mustEstimate(t *testing.T, g Geometry) energy.Cost {
	t.Helper()
	c, err := Estimate(g)
	if err != nil {
		t.Fatalf("Estimate(%+v): %v", g, err)
	}
	return c
}

// mustScaleFrom unwraps ScaleFrom for known-valid geometries.
func mustScaleFrom(t *testing.T, anchorCost energy.Cost, anchor, target Geometry) energy.Cost {
	t.Helper()
	c, err := ScaleFrom(anchorCost, anchor, target)
	if err != nil {
		t.Fatalf("ScaleFrom: %v", err)
	}
	return c
}

func TestMonotonicity(t *testing.T) {
	// More entries, more ways, more bits → never less energy or leakage.
	base := mustEstimate(t, PageTLBGeometry(64, 4))
	bigger := mustEstimate(t, PageTLBGeometry(128, 4))
	if bigger.ReadPJ <= base.ReadPJ || bigger.LeakMW <= base.LeakMW {
		t.Error("doubling entries should increase read energy and leakage")
	}
	moreWays := mustEstimate(t, Geometry{Entries: 128, Ways: 8, TagBits: 36, DataBits: 40})
	if moreWays.ReadPJ <= base.ReadPJ {
		t.Error("more ways read more bits per access")
	}
	camSmall := mustEstimate(t, RangeTLBGeometry(4))
	camBig := mustEstimate(t, RangeTLBGeometry(32))
	if camBig.ReadPJ <= camSmall.ReadPJ {
		t.Error("bigger CAM should cost more per search")
	}
}

func TestRangeTLBCostsMoreThanPageTLB(t *testing.T) {
	// Same entry count, but double-width tags: the paper charges range
	// TLBs more per access than page TLBs (§4.3).
	page := mustEstimate(t, Geometry{Entries: 4, CAM: true, TagBits: 36, DataBits: 40})
	rng := mustEstimate(t, RangeTLBGeometry(4))
	if rng.ReadPJ <= page.ReadPJ {
		t.Errorf("range TLB read %v should exceed page TLB read %v", rng.ReadPJ, page.ReadPJ)
	}
}

func TestValidateAgainstTable2(t *testing.T) {
	db := energy.Table2()
	errs, err := ValidateAgainstTable2(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) == 0 {
		t.Fatal("validation should cover the anchors")
	}
	for _, e := range errs {
		if e.RatioRead < 1.0/3 || e.RatioRead > 3 {
			t.Errorf("%s (ways %d): model %v pJ vs Table 2 %v pJ — ratio %.2f outside [1/3, 3]",
				e.Name, e.Ways, e.ModelPJ, e.Table2PJ, e.RatioRead)
		}
	}
	// The anchors the fit was built on should be tight.
	for _, e := range errs {
		if e.Name == energy.L14KB || e.Name == energy.L12MB {
			if e.RatioRead < 0.9 || e.RatioRead > 1.1 {
				t.Errorf("fit anchor %s off by %.2f×", e.Name, e.RatioRead)
			}
		}
	}
}

func TestScaleFromPreservesAnchor(t *testing.T) {
	db := energy.Table2()
	anchorCost := db.Cost(energy.L1Range, 0)
	g := RangeTLBGeometry(4)
	// Scaling a geometry to itself is the identity.
	same := mustScaleFrom(t, anchorCost, g, g)
	if same != anchorCost {
		t.Fatalf("identity scaling changed cost: %+v", same)
	}
	// Scaling up preserves ordering and stays anchored in scale.
	big := mustScaleFrom(t, anchorCost, g, RangeTLBGeometry(16))
	if big.ReadPJ <= anchorCost.ReadPJ {
		t.Error("16-entry range TLB should cost more than 4-entry")
	}
	if big.ReadPJ > 10*anchorCost.ReadPJ {
		t.Errorf("16-entry scale-up looks unanchored: %v vs %v", big.ReadPJ, anchorCost.ReadPJ)
	}
	// The modeled 32-entry scale-up should land near the real Table 2
	// L2-range value (ratio scaling cancels most model error).
	l2r := mustScaleFrom(t, anchorCost, g, RangeTLBGeometry(32))
	ref := db.Cost(energy.L2Range, 0)
	if l2r.ReadPJ < ref.ReadPJ/2 || l2r.ReadPJ > ref.ReadPJ*2 {
		t.Errorf("scaled 32-entry range TLB %v pJ vs Table 2 %v pJ", l2r.ReadPJ, ref.ReadPJ)
	}
}

func TestL2CacheEstimateScale(t *testing.T) {
	// The synthesized L2 cache read energy used by the energy DB should
	// agree with the model within a factor of ~2.
	db := energy.Table2()
	est := mustEstimate(t, DataCacheGeometry(256<<10, 8))
	ref := db.Cost(energy.L2Cache, 0)
	ratio := est.ReadPJ / ref.ReadPJ
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("L2 cache model %v pJ vs registered %v pJ (ratio %.2f)", est.ReadPJ, ref.ReadPJ, ratio)
	}
}
