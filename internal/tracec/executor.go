package tracec

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/vm"
	"xlate/internal/workloads"
)

// Executor runs simulation cells from compiled trace segments. It is
// the drop-in per-cell executor the harness (Config.Traces), the
// service daemon, and the cluster coordinator plug in:
//
//   - Cells whose spec is trace-backed (Spec.TraceRef) replay an
//     ingested segment from the Store, fetching it by content hash from
//     the upstream (coordinator) on a local miss. These cells cannot run
//     without an Executor — workloads.Spec.Build refuses them.
//   - Model cells compile-once-replay-many when CompileModels is set:
//     the first cell for a (spec, policy, seed, scale, budget) tuple
//     compiles the segment (singleflight), every later cell — including
//     Params sweeps over the same workload — replays it. Reports stay
//     byte-identical to live synthesis (see CompileSpec).
//   - Model cells fall through to exper.ExecuteJobContext when model
//     compilation is off.
type Executor struct {
	// Store holds the segments. Required.
	Store *Store
	// CompileModels turns on compile-once-replay-many for model cells
	// (the -compile-traces flag).
	CompileModels bool
	// Fetch, when non-nil, retrieves a missing ingested segment by
	// content hash — cluster workers point this at the coordinator's
	// /v1/traces/{key} (HTTPFetcher).
	Fetch func(ctx context.Context, key string) ([]byte, error)
	// Logf receives compile/fetch progress (nil = silent).
	Logf func(format string, args ...any)

	// Validated-segment memo: the harness replays one segment across
	// many cells (Params sweeps, retries, repeated specs), and the
	// strict Stat gate plus the disk read should be paid once per
	// segment, not once per cell. Guarded by mu; bounded by
	// maxValidatedBytes with a mass flush, which at worst re-reads and
	// revalidates — never a correctness concern, a Segment is immutable.
	mu       sync.Mutex
	segs     map[string]Segment
	segBytes int64
}

// maxValidatedBytes bounds the in-memory validated-segment memo
// (256 MiB ≈ a few hundred compiled cells at experiment scale).
const maxValidatedBytes = 256 << 20

// segment returns the validated segment under key, loading and
// validating only on the first request.
func (e *Executor) segment(key string, load func() ([]byte, error)) (Segment, error) {
	e.mu.Lock()
	if seg, ok := e.segs[key]; ok {
		e.mu.Unlock()
		return seg, nil
	}
	e.mu.Unlock()
	data, err := load()
	if err != nil {
		return Segment{}, err
	}
	seg, err := Validate(data)
	if err != nil {
		return Segment{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.segs == nil {
		e.segs = make(map[string]Segment)
	}
	if e.segBytes+int64(len(data)) > maxValidatedBytes {
		e.segs = make(map[string]Segment)
		e.segBytes = 0
	}
	if _, ok := e.segs[key]; !ok {
		e.segs[key] = seg
		e.segBytes += int64(len(data))
	}
	return seg, nil
}

func (e *Executor) logf(format string, args ...any) {
	if e.Logf != nil {
		e.Logf(format, args...)
	}
}

// ExecuteJob executes one cell, replaying a segment where one applies.
// It matches the harness Config.Execute signature and is safe for
// concurrent calls.
func (e *Executor) ExecuteJob(ctx context.Context, j exper.Job) (core.Result, error) {
	if j.Spec.TraceRef != "" {
		return e.replayIngested(ctx, j)
	}
	if !e.CompileModels || e.Store == nil {
		return exper.ExecuteJobContext(ctx, j)
	}
	return e.replayModel(ctx, j)
}

// replayModel is the compile-once-replay-many path: look up (or
// compile) the spec's segment, rebuild the address space exactly as a
// live run would, and stream the segment through the simulator.
func (e *Executor) replayModel(ctx context.Context, j exper.Job) (core.Result, error) {
	bopt := workloads.BuildOptions{Policy: j.Policy, Seed: j.Seed, Scale: j.Scale}
	key := Key(j.Spec, bopt, j.Instrs)
	seg, err := e.segment(key, func() ([]byte, error) {
		return e.Store.GetOrCompile(key, func() ([]byte, error) {
			data, info, cerr := CompileSpec(j.Spec, bopt, j.Instrs)
			if cerr != nil {
				return nil, cerr
			}
			e.logf("compiled %s → %s (%d refs, %d blocks, %d bytes)",
				j.Spec.Name, key[:12], info.Refs, info.Blocks, len(data))
			return data, nil
		})
	})
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: %s/%v: %w", j.Spec.Name, j.Params.Kind, err)
	}
	rp := seg.Replay()
	// Build the identical address space a live run constructs; only the
	// reference source differs, and the compiled stream is the exact
	// prefix the generator would yield — so the Result is identical.
	as, _, err := j.Spec.Build(bopt)
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: building %s: %w", j.Spec.Name, err)
	}
	sim, err := core.NewSimulator(j.Params, as)
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: %s/%v: %w", j.Spec.Name, j.Params.Kind, err)
	}
	res, err := sim.RunContext(ctx, rp, j.Instrs)
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: %s/%v: %w", j.Spec.Name, j.Params.Kind, err)
	}
	return res, nil
}

// replayIngested runs a trace-backed cell: an externally ingested
// reference stream replayed under demand paging (the stream's virtual
// addresses mean nothing to the eager-paging policy model, so pages
// materialize on first touch — the same path xlate.ReplayTrace takes
// for recorded traces). A short trace wraps until the budget is met.
func (e *Executor) replayIngested(ctx context.Context, j exper.Job) (core.Result, error) {
	if e.Store == nil {
		return core.Result{}, fmt.Errorf("tracec: trace-backed cell %s needs a segment store", j.Spec.Name)
	}
	key := j.Spec.TraceRef
	seg, err := e.segment(key, func() ([]byte, error) {
		data, err := e.Store.Get(key)
		if err != nil && e.Fetch != nil {
			if data, err = e.Fetch(ctx, key); err == nil {
				if err = e.Store.Put(key, data); err == nil {
					e.logf("fetched segment %s from upstream (%d bytes)", key[:12], len(data))
				}
			}
		}
		return data, err
	})
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: %s: %w", j.Spec.Name, err)
	}
	rp := seg.Replay()
	p := j.Params
	p.DemandPaging = true
	as := vm.New(vm.Config{Policy: j.Policy, Seed: j.Seed, PhysBytes: 64 << 30})
	sim, err := core.NewSimulator(p, as)
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: %s/%v: %w", j.Spec.Name, p.Kind, err)
	}
	res, err := sim.RunContext(ctx, rp, j.Instrs)
	if err != nil {
		return core.Result{}, fmt.Errorf("tracec: %s/%v: %w", j.Spec.Name, p.Kind, err)
	}
	return res, nil
}

// HTTPFetcher returns a Fetch func that retrieves segments from base's
// /v1/traces/{key} endpoint and verifies the body against its content
// hash before trusting it — the same recompute-the-identity trust rule
// the cluster's result-cache federation applies to fetched results.
func HTTPFetcher(base string, hc *http.Client) func(ctx context.Context, key string) ([]byte, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	return func(ctx context.Context, key string) ([]byte, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/traces/"+key, nil)
		if err != nil {
			return nil, fmt.Errorf("tracec: fetching segment %s: %w", key, err)
		}
		resp, err := hc.Do(req)
		if err != nil {
			return nil, fmt.Errorf("tracec: fetching segment %s: %w", key, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			return nil, fmt.Errorf("tracec: fetching segment %s: %w", key, ErrNotFound)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("tracec: fetching segment %s: upstream status %s", key, resp.Status)
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxSegmentBytes+1))
		if err != nil {
			return nil, fmt.Errorf("tracec: fetching segment %s: %w", key, err)
		}
		if len(data) > maxSegmentBytes {
			return nil, fmt.Errorf("tracec: fetching segment %s: larger than the %d-byte segment bound", key, maxSegmentBytes)
		}
		if got := ContentKey(data); got != key {
			return nil, fmt.Errorf("tracec: fetched segment hash %s does not match requested %s — refusing the bytes", got[:12], key[:12])
		}
		return data, nil
	}
}
