package tracec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"xlate/internal/workloads"
)

// formatVersion is baked into every content-address key so a future
// segment-format revision can never satisfy a stale key: bumping the
// format recompiles the world instead of replaying misdecoded bytes.
const formatVersion = 1

// Key is the content address of a compiled segment: SHA-256 over the
// format version, the complete spec, and every build input that shapes
// the reference stream — policy, seed, scale, physical-memory override,
// and the instruction budget. It deliberately excludes simulator
// parameters (TLB geometry, energy tables): cells that sweep Params
// under one OS policy share a single compiled trace, which is the
// compile-once-replay-many win inside harness plans. The canonical
// %+v encoding mirrors harness.JobKey's discipline.
func Key(spec workloads.Spec, opt workloads.BuildOptions, instrs uint64) string {
	canon := fmt.Sprintf("xlseg|v%d|spec=%+v|policy=%+v|seed=%d|scale=%g|phys=%d|instrs=%d",
		formatVersion, spec, opt.Policy, opt.Seed, opt.Scale, opt.PhysBytes, instrs)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// ContentKey is the content address of an ingested segment: SHA-256 of
// the segment bytes themselves. Ingested streams have no generating
// spec, so the bytes are the identity — which is also what lets a
// worker verify a segment fetched from the coordinator (HTTPFetcher).
func ContentKey(segment []byte) string {
	sum := sha256.Sum256(segment)
	return hex.EncodeToString(sum[:])
}

// CompileSpec lowers a workload model into a segment: it builds the
// spec exactly as a live run would (same policy/seed/scale, and
// therefore the same region windows and generator state) and freezes
// the references the generator yields until the instruction budget is
// met. The simulator consumes a reference while its accumulated
// instructions are below the budget, and every reference carries at
// least one instruction (the generator's pacing invariant), so the
// compiled stream is exactly the prefix a live run consumes — the
// byte-identity guarantee reduces to replaying this prefix through an
// identically built address space.
func CompileSpec(spec workloads.Spec, opt workloads.BuildOptions, instrs uint64) ([]byte, SegmentInfo, error) {
	if instrs == 0 {
		return nil, SegmentInfo{}, fmt.Errorf("tracec: compiling %s: zero instruction budget", spec.Name)
	}
	_, gen, err := spec.Build(opt)
	if err != nil {
		return nil, SegmentInfo{}, fmt.Errorf("tracec: compiling %s: %w", spec.Name, err)
	}
	enc := NewEncoder()
	for total := uint64(0); total < instrs; {
		r := gen.Next()
		total += r.Instrs
		enc.Add(r)
	}
	return enc.Finish()
}
