package tracec

import (
	"xlate/internal/trace"
)

// Replay streams a compiled segment into the simulator. It keeps the
// encoded bytes and decodes one block at a time into a reused flat
// []trace.Ref buffer, so Next is an index increment with a periodic
// block refill — memcpy-like speed with a bounded (one-block) working
// set regardless of segment size. Like trace.Replay it wraps at the end
// of the stream, so a short ingested trace fills any instruction
// budget; a segment compiled for a given budget is consumed at most
// once (CompileSpec freezes exactly the refs a live run consumes).
type Replay struct {
	data      []byte
	bodyStart int
	off       int // offset of the next undecoded block
	buf       []trace.Ref
	pos       int
	info      SegmentInfo

	// Laps counts completed passes over the segment.
	Laps int
}

// NewReplay validates the segment (the full Stat gate — CRCs, framing,
// totals) and returns a replay positioned at the first reference. The
// byte slice is retained and must not be mutated. Callers replaying
// one segment many times should Validate once and call Segment.Replay
// per run instead — it skips the per-replay revalidation.
func NewReplay(data []byte) (*Replay, error) {
	seg, err := Validate(data)
	if err != nil {
		return nil, err
	}
	return seg.Replay(), nil
}

// Replay returns a new replay of the validated segment, positioned at
// the first reference. Replays are independent: each keeps its own
// decode buffer and position, so concurrent cells can replay one
// Segment simultaneously.
func (s Segment) Replay() *Replay {
	if s.data == nil {
		panic("tracec: Replay on an unvalidated zero Segment")
	}
	_, bodyStart, _ := header(s.data)
	return &Replay{
		data:      s.data,
		bodyStart: bodyStart,
		off:       bodyStart,
		buf:       make([]trace.Ref, 0, blockRefs),
		info:      s.info,
	}
}

// Info returns the validated segment summary.
func (r *Replay) Info() SegmentInfo { return r.info }

// Next returns the next reference, wrapping to the start of the segment
// after the last block is drained.
func (r *Replay) Next() trace.Ref {
	if r.pos == len(r.buf) {
		r.refill()
	}
	ref := r.buf[r.pos]
	r.pos++
	return ref
}

// refill decodes the next block into the reused buffer. Stat already
// proved every block decodes cleanly, so failures here are impossible
// short of the caller mutating the retained slice — which panics, the
// same contract trace.Replay has for a mutated refs slice.
func (r *Replay) refill() {
	if r.off == len(r.data) {
		r.off = r.bodyStart
		r.Laps++
	}
	nr, payload, next, err := blockAt(r.data, r.off)
	if err == nil {
		r.buf, _, err = decodeBlock(r.buf[:0], nr, payload)
	}
	if err != nil {
		panic("tracec: validated segment no longer decodes: " + err.Error())
	}
	r.off = next
	r.pos = 0
}
