package tracec

import (
	"container/list"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a segment the store does not hold.
var ErrNotFound = errors.New("trace segment not found")

// Store is the on-disk, content-addressed segment store: one
// `<key>.seg` file per compiled or ingested segment, bounded by entry
// count and total bytes with LRU eviction — the same discipline as the
// service result cache, except entries live on disk so they survive
// process restarts and can be served to cluster peers by content hash.
// Segments are cache entries, not durable state: writes are atomic
// (temp file + rename) but not fsynced, because a lost segment is
// recompiled or re-fetched, never healed.
type Store struct {
	dir        string
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	entries map[string]*list.Element // key → lru element
	lru     *list.List               // front = most recent; values are *storeEntry
	bytes   int64
	flight  map[string]*compileCall
}

type storeEntry struct {
	key   string
	bytes int64
}

type compileCall struct {
	done chan struct{}
	data []byte
	err  error
}

// IsKey reports whether key is a well-formed content address — 64
// lowercase hex digits. Everything else is refused before it can touch
// a file path (the HTTP GET handler and the job API's "trace:<key>"
// workload names pass client input through here).
func IsKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// OpenStore opens (creating if needed) a segment store rooted at dir.
// Existing segments are adopted in modification-time order, so a
// restarted daemon's LRU approximates the previous process's recency.
// maxEntries and maxBytes bound the store (0 = a generous default).
func OpenStore(dir string, maxEntries int, maxBytes int64) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("tracec: empty store directory")
	}
	if maxEntries <= 0 {
		maxEntries = 256
	}
	if maxBytes <= 0 {
		maxBytes = 2 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracec: opening store: %w", err)
	}
	s := &Store{
		dir:        dir,
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		flight:     make(map[string]*compileCall),
	}
	if err := s.adopt(); err != nil {
		return nil, err
	}
	return s, nil
}

// adopt indexes segments already on disk, oldest first so the freshest
// file ends up at the LRU front.
func (s *Store) adopt() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("tracec: scanning store: %w", err)
	}
	type onDisk struct {
		key   string
		bytes int64
		mtime int64
	}
	var found []onDisk
	for _, de := range des {
		name := de.Name()
		key, ok := strings.CutSuffix(name, ".seg")
		if !ok || !IsKey(key) || de.IsDir() {
			continue
		}
		fi, err := de.Info()
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return fmt.Errorf("tracec: scanning store: %w", err)
		}
		found = append(found, onDisk{key: key, bytes: fi.Size(), mtime: fi.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range found {
		s.insertLocked(f.key, f.bytes)
	}
	return nil
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".seg") }

// insertLocked records key at the LRU front and evicts past the bounds,
// never evicting the entry just inserted.
func (s *Store) insertLocked(key string, n int64) {
	if el, ok := s.entries[key]; ok {
		s.bytes += n - el.Value.(*storeEntry).bytes
		el.Value.(*storeEntry).bytes = n
		s.lru.MoveToFront(el)
	} else {
		s.entries[key] = s.lru.PushFront(&storeEntry{key: key, bytes: n})
		s.bytes += n
	}
	for (s.lru.Len() > s.maxEntries || s.bytes > s.maxBytes) && s.lru.Len() > 1 {
		el := s.lru.Back()
		ent := el.Value.(*storeEntry)
		s.lru.Remove(el)
		delete(s.entries, ent.key)
		s.bytes -= ent.bytes
		os.Remove(s.path(ent.key)) //nolint:errcheck // eviction of a cache file
	}
}

// Get returns the segment stored under key, or ErrNotFound. A hit
// refreshes the entry's LRU position.
func (s *Store) Get(key string) ([]byte, error) {
	if !IsKey(key) {
		return nil, fmt.Errorf("tracec: %w: malformed key %q", ErrNotFound, key)
	}
	s.mu.Lock()
	el, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(el)
	}
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("tracec: %w: %s", ErrNotFound, key)
	}
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		// The file vanished under us (external cleanup); drop the index
		// entry and report a miss so the caller recompiles or re-fetches.
		s.dropIndex(key)
		return nil, fmt.Errorf("tracec: %w: %s", ErrNotFound, key)
	}
	return data, nil
}

func (s *Store) dropIndex(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.bytes -= el.Value.(*storeEntry).bytes
		s.lru.Remove(el)
		delete(s.entries, key)
	}
}

// Put stores a segment under key after validating it (the Stat gate —
// a corrupt segment never enters the store). The write is atomic.
func (s *Store) Put(key string, data []byte) error {
	if !IsKey(key) {
		return fmt.Errorf("tracec: malformed segment key %q", key)
	}
	if _, err := Stat(data); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("tracec: storing %s: %w", key, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("tracec: storing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("tracec: storing %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name()) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("tracec: storing %s: %w", key, err)
	}
	s.mu.Lock()
	s.insertLocked(key, int64(len(data)))
	s.mu.Unlock()
	return nil
}

// GetOrCompile returns the segment under key, invoking compile on a
// miss. Concurrent callers for the same key share one compilation
// (singleflight) — the harness fans the same spec across many cells,
// and exactly one of them should pay the compile.
func (s *Store) GetOrCompile(key string, compile func() ([]byte, error)) ([]byte, error) {
	if data, err := s.Get(key); err == nil {
		return data, nil
	}
	s.mu.Lock()
	if call, ok := s.flight[key]; ok {
		s.mu.Unlock()
		<-call.done
		return call.data, call.err
	}
	call := &compileCall{done: make(chan struct{})}
	s.flight[key] = call
	s.mu.Unlock()

	data, err := compile()
	if err == nil {
		err = s.Put(key, data)
	}
	call.data, call.err = data, err
	s.mu.Lock()
	delete(s.flight, key)
	s.mu.Unlock()
	close(call.done)
	return data, err
}

// Stats reports the store's current occupancy.
func (s *Store) Stats() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len(), s.bytes
}
