package tracec

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"xlate/internal/addr"
	"xlate/internal/core"
	"xlate/internal/exper"
	"xlate/internal/trace"
	"xlate/internal/workloads"
)

// synthRefs builds a deterministic pseudo-random reference slice that
// exercises the full delta range: forward and backward jumps, large
// gaps, and varied instruction gaps.
func synthRefs(n int, seed int64) []trace.Ref {
	rng := rand.New(rand.NewSource(seed))
	refs := make([]trace.Ref, n)
	va := uint64(1 << 30)
	for i := range refs {
		va += uint64(rng.Int63n(1<<21)) - 1<<20 // signed-ish walk
		refs[i] = trace.Ref{VA: addr.VA(va), Instrs: uint64(rng.Int63n(8)) + 1}
	}
	return refs
}

func mustSegment(t *testing.T, refs []trace.Ref) ([]byte, SegmentInfo) {
	t.Helper()
	seg, info, err := EncodeRefs(refs)
	if err != nil {
		t.Fatal(err)
	}
	return seg, info
}

func TestRoundTrip(t *testing.T) {
	// Three sizes: sub-block, exactly one block, and multi-block with a
	// partial trailing block.
	for _, n := range []int{1, 100, blockRefs, 2*blockRefs + 37} {
		refs := synthRefs(n, int64(n))
		seg, info := mustSegment(t, refs)

		wantBlocks := (n + blockRefs - 1) / blockRefs
		if info.Blocks != wantBlocks || info.Refs != uint64(n) {
			t.Fatalf("n=%d: info = %+v, want %d blocks / %d refs", n, info, wantBlocks, n)
		}
		statInfo, err := Stat(seg)
		if err != nil {
			t.Fatalf("n=%d: Stat: %v", n, err)
		}
		if statInfo != info {
			t.Fatalf("n=%d: Stat info %+v != encode info %+v", n, statInfo, info)
		}
		got, err := DecodeAll(seg)
		if err != nil {
			t.Fatalf("n=%d: DecodeAll: %v", n, err)
		}
		if !reflect.DeepEqual(got, refs) {
			t.Fatalf("n=%d: decoded refs differ from encoded refs", n)
		}
	}
}

func TestEmptySegmentRefused(t *testing.T) {
	if _, _, err := NewEncoder().Finish(); err == nil {
		t.Fatal("Finish on an empty encoder should fail")
	}
}

// TestCorruption proves the strict gate: every truncation and a
// representative set of byte flips are refused with ErrSegmentCorrupt,
// never a panic or a silent misdecode.
func TestCorruption(t *testing.T) {
	refs := synthRefs(1000, 3)
	seg, _ := mustSegment(t, refs)

	for cut := 0; cut < len(seg); cut++ {
		if _, err := Stat(seg[:cut]); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("Stat(seg[:%d]) = %v, want ErrSegmentCorrupt", cut, err)
		}
	}
	// A flipped byte anywhere must be refused: the magic check, header
	// plausibility, per-block CRC, and header-total cross-check between
	// them leave no byte unprotected.
	for off := 0; off < len(seg); off++ {
		mut := bytes.Clone(seg)
		mut[off] ^= 0x40
		if _, err := Stat(mut); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("Stat with byte %d flipped = %v, want ErrSegmentCorrupt", off, err)
		}
	}
	if _, err := Stat([]byte("not a segment at all")); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("Stat(garbage) = %v, want ErrSegmentCorrupt", err)
	}
	if _, err := DecodeAll(nil); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("DecodeAll(nil) = %v, want ErrSegmentCorrupt", err)
	}
}

func TestReplayWrapsAndCountsLaps(t *testing.T) {
	refs := synthRefs(blockRefs+100, 11) // two blocks, second partial
	seg, _ := mustSegment(t, refs)
	rp, err := NewReplay(seg)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Info().Refs != uint64(len(refs)) {
		t.Fatalf("Info().Refs = %d, want %d", rp.Info().Refs, len(refs))
	}
	// Two and a half passes: every read must equal the source slice at
	// its wrapped index, and Laps must tick at each wrap.
	total := 2*len(refs) + len(refs)/2
	for i := 0; i < total; i++ {
		if got, want := rp.Next(), refs[i%len(refs)]; got != want {
			t.Fatalf("ref %d = %+v, want %+v", i, got, want)
		}
	}
	if rp.Laps != 2 {
		t.Fatalf("Laps = %d, want 2", rp.Laps)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 3; i++ {
		seg, _ := mustSegment(t, synthRefs(50, int64(i)))
		key := ContentKey(seg)
		if err := s.Put(key, seg); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if n, _ := s.Stats(); n != 2 {
		t.Fatalf("entries = %d, want 2 after eviction", n)
	}
	if _, err := s.Get(keys[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest entry should be evicted, Get = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[0]+".seg")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("evicted segment file still on disk")
	}
	for _, k := range keys[1:] {
		if _, err := s.Get(k); err != nil {
			t.Fatalf("Get(%s) = %v", k[:12], err)
		}
	}
}

func TestStorePutRefusesCorruptAndMalformed(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := mustSegment(t, synthRefs(10, 1))
	if err := s.Put("not-a-key", seg); err == nil {
		t.Fatal("Put with a malformed key should fail")
	}
	mut := bytes.Clone(seg)
	mut[len(mut)-1] ^= 1
	if err := s.Put(ContentKey(mut), mut); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("Put(corrupt) = %v, want ErrSegmentCorrupt", err)
	}
	if n, _ := s.Stats(); n != 0 {
		t.Fatalf("refused Puts left %d entries in the store", n)
	}
}

func TestStoreAdoptOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := mustSegment(t, synthRefs(200, 9))
	key := ContentKey(seg)
	if err := s.Put(key, seg); err != nil {
		t.Fatal(err)
	}
	// Junk that adopt must skip without failing.
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, b := s2.Stats(); n != 1 || b != int64(len(seg)) {
		t.Fatalf("reopened store = %d entries / %d bytes, want 1 / %d", n, b, len(seg))
	}
	got, err := s2.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seg) {
		t.Fatal("adopted segment bytes differ")
	}
}

func TestGetOrCompileSingleflight(t *testing.T) {
	s, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg, _ := mustSegment(t, synthRefs(100, 4))
	key := ContentKey(seg)

	var compiles atomic.Int32
	gate := make(chan struct{})
	const callers = 8
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := s.GetOrCompile(key, func() ([]byte, error) {
				compiles.Add(1)
				<-gate // hold the flight open until every caller has arrived
				return seg, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = data
		}(i)
	}
	// Wait until one caller is inside compile, then release it; the
	// rest must join that flight rather than compile again.
	for compiles.Load() == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d compiles for one key, want 1 (singleflight)", got)
	}
	for i, data := range results {
		if !bytes.Equal(data, seg) {
			t.Fatalf("caller %d got wrong bytes", i)
		}
	}
	// The compiled segment landed in the store.
	if _, err := s.Get(key); err != nil {
		t.Fatalf("segment not stored after GetOrCompile: %v", err)
	}
}

// externalTrace renders refs in the documented XLTRACE1 upload format
// (what `eeatsim -record` writes).
func externalTrace(t *testing.T, refs []trace.Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := tw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIngest(t *testing.T) {
	refs := synthRefs(500, 21)

	seg, info, err := Ingest(externalTrace(t, refs))
	if err != nil {
		t.Fatal(err)
	}
	if info.Refs != uint64(len(refs)) {
		t.Fatalf("ingested %d refs, want %d", info.Refs, len(refs))
	}
	got, err := DecodeAll(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, refs) {
		t.Fatal("ingested segment decodes to different refs than uploaded")
	}

	// A pre-compiled segment passes through byte-identically.
	seg2, _, err := Ingest(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seg2, seg) {
		t.Fatal("XLSEGv1 passthrough mutated the bytes")
	}

	// Strictness: zero-instruction records break the pacing invariant.
	bad := refs[:3:3]
	bad = append(bad, trace.Ref{VA: 4096, Instrs: 0})
	if _, _, err := Ingest(externalTrace(t, bad)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("zero-instr record: err = %v, want ErrBadTrace", err)
	}
	// Empty stream, unknown magic, damaged segment.
	if _, _, err := Ingest(externalTrace(t, nil)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("empty trace: err = %v, want ErrBadTrace", err)
	}
	if _, _, err := Ingest([]byte("PINTRACE\n....")); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("unknown magic: err = %v, want ErrBadTrace", err)
	}
	mut := bytes.Clone(seg)
	mut[len(mut)/2] ^= 1
	if _, _, err := Ingest(mut); !errors.Is(err, ErrSegmentCorrupt) {
		t.Fatalf("damaged segment: err = %v, want ErrSegmentCorrupt", err)
	}
}

func postTrace(t *testing.T, ts *httptest.Server, body []byte, gzipped bool) (*http.Response, []byte) {
	t.Helper()
	if gzipped {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		if _, err := gz.Write(body); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
		body = buf.Bytes()
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/traces", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestAPIIngestAndFetch(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(store, APIConfig{})
	ts := httptest.NewServer(api)
	defer ts.Close()

	refs := synthRefs(300, 5)
	upload := externalTrace(t, refs)
	wantSeg, _, err := Ingest(upload)
	if err != nil {
		t.Fatal(err)
	}
	wantKey := ContentKey(wantSeg)

	resp, body := postTrace(t, ts, upload, false)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plain ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var info TraceInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Key != wantKey || info.Workload != "trace:"+wantKey {
		t.Fatalf("ingest response %+v, want key %s", info, wantKey[:12])
	}
	if info.Refs != uint64(len(refs)) || info.Bytes != int64(len(wantSeg)) {
		t.Fatalf("ingest response %+v: refs/bytes wrong", info)
	}

	// A gzip upload of the same stream lands on the same content hash.
	resp, body = postTrace(t, ts, upload, true)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("gzip ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var gzInfo TraceInfo
	if err := json.Unmarshal(body, &gzInfo); err != nil {
		t.Fatal(err)
	}
	if gzInfo.Key != wantKey {
		t.Fatalf("gzip ingest key %s != plain key %s", gzInfo.Key[:12], wantKey[:12])
	}

	// Fetch round trip with the immutable-cache discipline.
	code, seg := getURL(t, ts, "/v1/traces/"+wantKey, "")
	if code != http.StatusOK || !bytes.Equal(seg, wantSeg) {
		t.Fatalf("segment fetch: HTTP %d, %d bytes (want %d)", code, len(seg), len(wantSeg))
	}
	code, _ = getURL(t, ts, "/v1/traces/"+wantKey, `"`+wantKey+`"`)
	if code != http.StatusNotModified {
		t.Fatalf("If-None-Match fetch: HTTP %d, want 304", code)
	}
	code, _ = getURL(t, ts, "/v1/traces/"+strings.Repeat("0", 64), "")
	if code != http.StatusNotFound {
		t.Fatalf("missing segment: HTTP %d, want 404", code)
	}
}

func getURL(t *testing.T, ts *httptest.Server, path, ifNoneMatch string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestAPIRejections(t *testing.T) {
	store, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	api := NewAPI(store, APIConfig{MaxBytes: 512})
	ts := httptest.NewServer(api)
	defer ts.Close()

	// Wrong method on both endpoints.
	resp, err := ts.Client().Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/traces: HTTP %d, want 405", resp.StatusCode)
	}
	resp, _ = postTrace(t, ts, nil, false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty POST: HTTP %d, want 400", resp.StatusCode)
	}
	resp, body := postTrace(t, ts, []byte("garbage bytes, no magic"), false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage POST: HTTP %d, want 400", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("error")) {
		t.Fatalf("400 body is not a typed error: %s", body)
	}

	// Over the raw limit → 413.
	resp, _ = postTrace(t, ts, externalTrace(t, synthRefs(5000, 1)), false)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize POST: HTTP %d, want 413", resp.StatusCode)
	}
	// A small gzip body that inflates past the limit → 413, not OOM.
	resp, _ = postTrace(t, ts, externalTrace(t, synthRefs(5000, 2)), true)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("gzip-bomb POST: HTTP %d, want 413", resp.StatusCode)
	}

	// Admission control: with the pending slots full, an upload is
	// turned away with 429 + Retry-After instead of queueing.
	api.pending <- struct{}{}
	api.pending <- struct{}{}
	resp, _ = postTrace(t, ts, externalTrace(t, synthRefs(5, 3)), false)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	<-api.pending
	<-api.pending
	resp, _ = postTrace(t, ts, externalTrace(t, synthRefs(5, 3)), false)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingest after drain: HTTP %d, want 201", resp.StatusCode)
	}
}

func TestHTTPFetcherVerifiesContentHash(t *testing.T) {
	seg, _ := mustSegment(t, synthRefs(100, 8))
	key := ContentKey(seg)
	evil, _ := mustSegment(t, synthRefs(100, 9))

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, key):
			w.Write(seg)
		case strings.HasSuffix(r.URL.Path, "missing"):
			http.NotFound(w, r)
		default:
			w.Write(evil) // wrong bytes for whatever key was asked
		}
	}))
	defer srv.Close()
	fetch := HTTPFetcher(srv.URL, srv.Client())

	got, err := fetch(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, seg) {
		t.Fatal("fetched bytes differ")
	}
	if _, err := fetch(context.Background(), ContentKey(evil)+"x"); err == nil {
		t.Fatal("fetcher accepted bytes whose hash does not match the requested key")
	}
	if _, err := fetch(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 fetch = %v, want ErrNotFound", err)
	}
}

// TestExecutorModelReplayMatchesLive is the in-package byte-identity
// check at Result granularity: a model cell run through the
// compile-once-replay-many path must produce exactly the Result live
// synthesis produces. (TestReplayByteIdentity proves the same at
// rendered-report granularity over the whole fig2 suite.)
func TestExecutorModelReplayMatchesLive(t *testing.T) {
	spec, ok := workloads.ByName("swaptions")
	if !ok {
		t.Fatal("no swaptions workload")
	}
	store, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Store: store, CompileModels: true}
	for _, kind := range []core.ConfigKind{core.Cfg4KB, core.CfgRMMLite} {
		j := exper.Job{
			Spec:   spec,
			Params: core.DefaultParams(kind),
			Policy: core.PolicyFor(kind, 0.5),
			Instrs: 200_000,
			Scale:  0.25,
			Seed:   7,
		}
		live, err := exper.ExecuteJobContext(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := ex.ExecuteJob(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replayed) {
			t.Fatalf("%v: replayed Result differs from live synthesis", kind)
		}
		// Second run must hit the cached segment and still agree.
		again, err := ex.ExecuteJob(context.Background(), j)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, again) {
			t.Fatalf("%v: cached replay differs from live synthesis", kind)
		}
	}
	if n, _ := store.Stats(); n != 2 {
		t.Fatalf("store holds %d segments, want 2 (one per policy)", n)
	}
}

// TestExecutorIngestedReplay runs a trace-backed cell end to end: the
// segment comes from the store (or the upstream fetcher), replays
// under demand paging, and is deterministic across runs and across the
// fetch path.
func TestExecutorIngestedReplay(t *testing.T) {
	seg, _, err := Ingest(externalTrace(t, synthRefs(5000, 13)))
	if err != nil {
		t.Fatal(err)
	}
	key := ContentKey(seg)

	local, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Put(key, seg); err != nil {
		t.Fatal(err)
	}
	job := func() exper.Job {
		return exper.Job{
			Spec:   workloads.TraceSpec(key),
			Params: core.DefaultParams(core.Cfg4KB),
			Policy: core.PolicyFor(core.Cfg4KB, 0.5),
			Instrs: 100_000,
			Seed:   7,
		}
	}

	ex := &Executor{Store: local}
	r1, err := ex.ExecuteJob(context.Background(), job())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Instructions < 100_000 || r1.MemRefs == 0 {
		t.Fatalf("implausible replay result: %d instrs, %d refs", r1.Instructions, r1.MemRefs)
	}
	r2, err := ex.ExecuteJob(context.Background(), job())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("ingested replay is not deterministic")
	}

	// A second node with an empty store fetches the segment from the
	// first node's API by content hash — the cluster dispatch path —
	// and lands on the identical Result.
	coord := httptest.NewServer(NewAPI(local, APIConfig{}))
	defer coord.Close()
	remoteStore, err := OpenStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fetches atomic.Int32
	base := HTTPFetcher(coord.URL, coord.Client())
	remote := &Executor{
		Store: remoteStore,
		Fetch: func(ctx context.Context, k string) ([]byte, error) {
			fetches.Add(1)
			return base(ctx, k)
		},
	}
	r3, err := remote.ExecuteJob(context.Background(), job())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatal("fetched-segment replay differs from local replay")
	}
	// The fetched segment is now cached locally: no second fetch.
	if _, err := remote.ExecuteJob(context.Background(), job()); err != nil {
		t.Fatal(err)
	}
	if got := fetches.Load(); got != 1 {
		t.Fatalf("%d upstream fetches, want 1 (segment should be cached after the first)", got)
	}

	// Regression: under RMM a monotonically sweeping trace faults
	// chunks in VA order, so eager paging hands them physically
	// contiguous blocks and the range table *merges* them; the stale
	// narrower ranges must be shot down from the range TLBs, not trip
	// the overlap invariant (this panicked before the fix in
	// core.Access's demand-fault path).
	sweep := make([]trace.Ref, 4000)
	for i := range sweep {
		sweep[i] = trace.Ref{VA: addr.VA(1<<32 + i*128<<10), Instrs: 3}
	}
	sweepSeg, _, err := EncodeRefs(sweep)
	if err != nil {
		t.Fatal(err)
	}
	sweepKey := ContentKey(sweepSeg)
	if err := local.Put(sweepKey, sweepSeg); err != nil {
		t.Fatal(err)
	}
	rmmJob := job()
	rmmJob.Spec = workloads.TraceSpec(sweepKey)
	rmmJob.Params = core.DefaultParams(core.CfgRMM)
	rmmJob.Policy = core.PolicyFor(core.CfgRMM, 0.5)
	if _, err := ex.ExecuteJob(context.Background(), rmmJob); err != nil {
		t.Fatalf("RMM replay of a range-merging trace: %v", err)
	}

	// Without a store or fetch path the cell is refused, not mis-run.
	none := &Executor{}
	if _, err := none.ExecuteJob(context.Background(), job()); err == nil {
		t.Fatal("trace-backed cell without a store should fail")
	}
	missing := &Executor{Store: remoteStore}
	badJob := job()
	badJob.Spec = workloads.TraceSpec(strings.Repeat("1", 64))
	if _, err := missing.ExecuteJob(context.Background(), badJob); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown trace ref = %v, want ErrNotFound", err)
	}
}

func TestKeyDiscriminates(t *testing.T) {
	spec, _ := workloads.ByName("swaptions")
	base := workloads.BuildOptions{Policy: core.PolicyFor(core.Cfg4KB, 0.5), Seed: 7, Scale: 0.25}
	k := Key(spec, base, 100_000)
	if !IsKey(k) {
		t.Fatalf("Key produced a malformed key %q", k)
	}
	variants := []struct {
		name string
		key  string
	}{
		{"seed", Key(spec, workloads.BuildOptions{Policy: base.Policy, Seed: 8, Scale: 0.25}, 100_000)},
		{"scale", Key(spec, workloads.BuildOptions{Policy: base.Policy, Seed: 7, Scale: 0.5}, 100_000)},
		{"policy", Key(spec, workloads.BuildOptions{Policy: core.PolicyFor(core.CfgTHP, 0.5), Seed: 7, Scale: 0.25}, 100_000)},
		{"instrs", Key(spec, base, 200_000)},
	}
	for _, v := range variants {
		if v.key == k {
			t.Errorf("changing %s did not change the key", v.name)
		}
	}
	if k2 := Key(spec, base, 100_000); k2 != k {
		t.Error("Key is not deterministic")
	}
}

func TestIsKey(t *testing.T) {
	good := ContentKey([]byte("x"))
	if !IsKey(good) {
		t.Fatalf("IsKey(%s) = false", good)
	}
	for _, bad := range []string{
		"", "short", strings.Repeat("0", 63), strings.Repeat("0", 65),
		strings.Repeat("G", 64), strings.ToUpper(good), "../" + good[3:],
	} {
		if IsKey(bad) {
			t.Errorf("IsKey(%q) = true", bad)
		}
	}
}
