package tracec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzSegmentDecode is the decoder's robustness contract: for arbitrary
// input the full decode pipeline (Stat, DecodeAll, NewReplay) never
// panics; every rejection is the typed ErrSegmentCorrupt; and any input
// that passes the Stat gate decodes cleanly, replays, and re-encodes to
// the same reference stream. Run continuously with `make fuzz`.
func FuzzSegmentDecode(f *testing.F) {
	// Seeds: valid segments of several shapes plus characteristic
	// damage, so the corpus starts on both sides of the gate.
	for _, n := range []int{1, 7, 300} {
		seg, _, err := EncodeRefs(synthRefs(n, int64(n)))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(seg)
		f.Add(seg[:len(seg)-1])
		mut := bytes.Clone(seg)
		mut[len(mut)/2] ^= 0x10
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("XLSEGv1\n"))
	f.Add([]byte("XLTRACE1\n"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := Stat(data)
		if err != nil {
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("Stat rejection is not typed: %v", err)
			}
			// The other entry points must agree that the bytes are bad
			// (and must not panic while concluding so).
			if _, err := DecodeAll(data); !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("Stat refused but DecodeAll said %v", err)
			}
			if _, err := NewReplay(data); !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("Stat refused but NewReplay said %v", err)
			}
			return
		}
		// Stat accepted: the segment must decode, replay, and survive a
		// round trip through the encoder.
		refs, err := DecodeAll(data)
		if err != nil {
			t.Fatalf("Stat accepted but DecodeAll failed: %v", err)
		}
		if uint64(len(refs)) != info.Refs {
			t.Fatalf("decoded %d refs, header says %d", len(refs), info.Refs)
		}
		rp, err := NewReplay(data)
		if err != nil {
			t.Fatalf("Stat accepted but NewReplay failed: %v", err)
		}
		for i, want := range refs {
			if got := rp.Next(); got != want {
				t.Fatalf("replay ref %d = %+v, decode says %+v", i, got, want)
			}
		}
		if rp.Next() != refs[0] || rp.Laps != 1 {
			t.Fatal("replay did not wrap cleanly after the last reference")
		}
		reenc, reinfo, err := EncodeRefs(refs)
		if err != nil {
			t.Fatalf("re-encoding decoded refs failed: %v", err)
		}
		if reinfo != info {
			t.Fatalf("re-encode info %+v != original %+v", reinfo, info)
		}
		rerefs, err := DecodeAll(reenc)
		if err != nil || !reflect.DeepEqual(rerefs, refs) {
			t.Fatalf("re-encode round trip diverged (err=%v)", err)
		}
	})
}
