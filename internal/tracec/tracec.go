// Package tracec is the workload compiler: it lowers a workload model
// (workloads.Spec) — or an externally ingested reference stream — into
// compact, replayable trace *segments* and replays them into the
// simulator at memcpy-like speed.
//
// The paper drives its simulator with 50-billion-instruction Pin traces;
// our substitution (internal/trace + internal/workloads) synthesizes
// every reference live on the hot path, paying Zipf/mix RNG work per
// access. tracec removes that cost for every run after the first: a
// compile step consumes the spec's deterministic generator exactly as a
// live run would and freezes the references it produces into a segment,
// which later runs decode block-at-a-time into flat []trace.Ref batches.
// Because the compiled stream is bit-for-bit the stream a live run
// consumes — and the address space is rebuilt under the identical
// policy/seed/scale — a compiled-then-replayed cell renders reports
// byte-identical to live synthesis (proven by TestReplayByteIdentity).
//
// Segments are stored content-addressed (SHA-256; see Key) in an
// on-disk Store with LRU bounds, mirroring the service result-cache
// discipline, and travel between cluster nodes by content hash over
// the /v1/traces HTTP API (see httpapi.go).
//
// # Segment format (version 1)
//
//	header:  "XLSEGv1\n"
//	         uvarint(block count), uvarint(total refs), uvarint(total instrs)
//	block:   uvarint(ref count), uvarint(payload bytes),
//	         uint32le(IEEE CRC of payload), payload
//	payload: per ref: zigzag-varint(VA delta from the previous ref in
//	         the block; the first ref's delta is from 0, i.e. its
//	         absolute VA), uvarint(instrs)
//
// Blocks are self-contained (the VA delta chain restarts at each block)
// so the decoder materializes one block at a time into a reused flat
// buffer. Any damage — bad magic, torn varint, CRC mismatch, count or
// total disagreement — is refused with a typed ErrSegmentCorrupt;
// unlike the coordinator crash journal there is no heal path, because a
// segment is a cache entry addressed by its content: a damaged one is
// simply recompiled or re-fetched.
package tracec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"xlate/internal/addr"
	"xlate/internal/trace"
)

// ErrSegmentCorrupt is wrapped by every decode failure: bad magic,
// truncated header or block, varint overflow, CRC mismatch, or totals
// that disagree with the header. Callers classify with errors.Is and
// refuse the segment — there is no partial-decode path.
var ErrSegmentCorrupt = errors.New("trace segment corrupt")

var segMagic = []byte("XLSEGv1\n")

// blockRefs is the compile-time block granularity: 32 Ki references
// (~100-200 KB encoded) keeps the replay working set L2-resident while
// amortizing per-block framing to well under a bit per reference.
const blockRefs = 1 << 15

// SegmentInfo summarizes a validated segment.
type SegmentInfo struct {
	Blocks int
	Refs   uint64
	Instrs uint64
}

// Encoder builds a segment incrementally. Add references, then Finish.
type Encoder struct {
	body    []byte
	scratch [2 * binary.MaxVarintLen64]byte

	cur       []byte // current block payload
	curRefs   int
	prevVA    uint64
	blocks    int
	refs      uint64
	instrs    uint64
	blockHead [2*binary.MaxVarintLen64 + 4]byte
}

// NewEncoder returns an empty segment encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Add appends one reference.
func (e *Encoder) Add(r trace.Ref) {
	delta := int64(uint64(r.VA) - e.prevVA) // wrapping delta
	n := binary.PutVarint(e.scratch[:], delta)
	n += binary.PutUvarint(e.scratch[n:], r.Instrs)
	e.cur = append(e.cur, e.scratch[:n]...)
	e.prevVA = uint64(r.VA)
	e.curRefs++
	e.refs++
	e.instrs += r.Instrs
	if e.curRefs == blockRefs {
		e.flushBlock()
	}
}

func (e *Encoder) flushBlock() {
	if e.curRefs == 0 {
		return
	}
	n := binary.PutUvarint(e.blockHead[:], uint64(e.curRefs))
	n += binary.PutUvarint(e.blockHead[n:], uint64(len(e.cur)))
	binary.LittleEndian.PutUint32(e.blockHead[n:], crc32.ChecksumIEEE(e.cur))
	e.body = append(e.body, e.blockHead[:n+4]...)
	e.body = append(e.body, e.cur...)
	e.cur = e.cur[:0]
	e.curRefs = 0
	e.prevVA = 0 // the delta chain restarts per block
	e.blocks++
}

// Finish flushes the trailing block and returns the complete segment.
// At least one reference must have been added.
func (e *Encoder) Finish() ([]byte, SegmentInfo, error) {
	e.flushBlock()
	if e.blocks == 0 {
		return nil, SegmentInfo{}, fmt.Errorf("tracec: empty segment")
	}
	var head [3 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(head[:], uint64(e.blocks))
	n += binary.PutUvarint(head[n:], e.refs)
	n += binary.PutUvarint(head[n:], e.instrs)
	out := make([]byte, 0, len(segMagic)+n+len(e.body))
	out = append(out, segMagic...)
	out = append(out, head[:n]...)
	out = append(out, e.body...)
	return out, SegmentInfo{Blocks: e.blocks, Refs: e.refs, Instrs: e.instrs}, nil
}

// EncodeRefs builds a segment from a complete reference slice.
func EncodeRefs(refs []trace.Ref) ([]byte, SegmentInfo, error) {
	e := NewEncoder()
	for _, r := range refs {
		e.Add(r)
	}
	return e.Finish()
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("tracec: %w: %s", ErrSegmentCorrupt, fmt.Sprintf(format, args...))
}

// uvarint decodes from data[off:], refusing truncation and overlong
// encodings with ErrSegmentCorrupt.
func uvarint(data []byte, off int, what string) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, corrupt("bad %s varint at offset %d", what, off)
	}
	return v, off + n, nil
}

// header validates the magic and fixed header, returning the info and
// the offset of the first block.
func header(data []byte) (SegmentInfo, int, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return SegmentInfo{}, 0, corrupt("bad magic")
	}
	off := len(segMagic)
	nb, off, err := uvarint(data, off, "block count")
	if err != nil {
		return SegmentInfo{}, 0, err
	}
	refs, off, err := uvarint(data, off, "ref total")
	if err != nil {
		return SegmentInfo{}, 0, err
	}
	instrs, off, err := uvarint(data, off, "instr total")
	if err != nil {
		return SegmentInfo{}, 0, err
	}
	if nb == 0 || refs == 0 {
		return SegmentInfo{}, 0, corrupt("empty segment (%d blocks, %d refs)", nb, refs)
	}
	const maxBlocks = 1 << 32
	if nb > maxBlocks || refs > uint64(nb)*blockRefs {
		return SegmentInfo{}, 0, corrupt("implausible header (%d blocks, %d refs)", nb, refs)
	}
	return SegmentInfo{Blocks: int(nb), Refs: refs, Instrs: instrs}, off, nil
}

// blockAt validates the framing of the block at data[off:] — counts,
// payload bounds, CRC — and returns the ref count, payload, and the
// offset of the next block.
func blockAt(data []byte, off int) (refCount int, payload []byte, next int, err error) {
	nr, off, err := uvarint(data, off, "block ref count")
	if err != nil {
		return 0, nil, 0, err
	}
	plen, off, err := uvarint(data, off, "block payload length")
	if err != nil {
		return 0, nil, 0, err
	}
	if nr == 0 || nr > blockRefs {
		return 0, nil, 0, corrupt("block ref count %d out of range at offset %d", nr, off)
	}
	// Each ref costs at least 2 payload bytes; an inconsistent pair is
	// refused before the bounds check can be fooled.
	if plen > uint64(len(data)) || int(plen) < int(nr) {
		return 0, nil, 0, corrupt("block payload length %d inconsistent with %d refs at offset %d", plen, nr, off)
	}
	if off+4 > len(data) || uint64(off+4)+plen > uint64(len(data)) {
		return 0, nil, 0, corrupt("torn block at offset %d", off)
	}
	want := binary.LittleEndian.Uint32(data[off:])
	payload = data[off+4 : off+4+int(plen)]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return 0, nil, 0, corrupt("block CRC mismatch at offset %d (%08x != %08x)", off, got, want)
	}
	return int(nr), payload, off + 4 + int(plen), nil
}

// decodeBlock appends a validated block's references to dst and
// returns the block's instruction total. The VA delta chain restarts
// at zero. The payload has already passed the CRC, so any leftover or
// missing bytes are encoder-level corruption. The varint decode is
// hand-inlined (same semantics as binary.Uvarint: truncated, overlong,
// and overflowing encodings are refused) — this loop is the replay hot
// path, and the call plus re-slice overhead of the stdlib decoder is
// the difference between memcpy-like and merely fast.
func decodeBlock(dst []trace.Ref, refCount int, payload []byte) ([]trace.Ref, uint64, error) {
	var prev, instrTotal uint64
	off := 0
	for i := 0; i < refCount; i++ {
		var ux uint64
		var s uint
		for {
			if off == len(payload) {
				return dst, 0, corrupt("bad VA delta in block (ref %d)", i)
			}
			b := payload[off]
			off++
			if b < 0x80 {
				if s == 63 && b > 1 {
					return dst, 0, corrupt("bad VA delta in block (ref %d)", i)
				}
				ux |= uint64(b) << s
				break
			}
			if s == 63 {
				return dst, 0, corrupt("bad VA delta in block (ref %d)", i)
			}
			ux |= uint64(b&0x7f) << s
			s += 7
		}
		prev += uint64(int64(ux>>1) ^ -int64(ux&1)) // zigzag decode

		var instrs uint64
		s = 0
		for {
			if off == len(payload) {
				return dst, 0, corrupt("bad instr count in block (ref %d)", i)
			}
			b := payload[off]
			off++
			if b < 0x80 {
				if s == 63 && b > 1 {
					return dst, 0, corrupt("bad instr count in block (ref %d)", i)
				}
				instrs |= uint64(b) << s
				break
			}
			if s == 63 {
				return dst, 0, corrupt("bad instr count in block (ref %d)", i)
			}
			instrs |= uint64(b&0x7f) << s
			s += 7
		}
		instrTotal += instrs
		dst = append(dst, trace.Ref{VA: addr.VA(prev), Instrs: instrs})
	}
	if off != len(payload) {
		return dst, 0, corrupt("%d trailing bytes after block payload", len(payload)-off)
	}
	return dst, instrTotal, nil
}

// Stat fully validates a segment — header, every block's framing and
// CRC, every record's encoding, and the header totals — and returns its
// info. This is the strict gate every segment passes before a Replay or
// the store will touch it; all failures wrap ErrSegmentCorrupt.
func Stat(data []byte) (SegmentInfo, error) {
	info, off, err := header(data)
	if err != nil {
		return SegmentInfo{}, err
	}
	var refs, instrs uint64
	buf := make([]trace.Ref, 0, blockRefs)
	for b := 0; b < info.Blocks; b++ {
		nr, payload, next, err := blockAt(data, off)
		if err != nil {
			return SegmentInfo{}, err
		}
		var blockInstrs uint64
		buf, blockInstrs, err = decodeBlock(buf[:0], nr, payload)
		if err != nil {
			return SegmentInfo{}, err
		}
		instrs += blockInstrs
		refs += uint64(nr)
		off = next
	}
	if off != len(data) {
		return SegmentInfo{}, corrupt("%d trailing bytes after last block", len(data)-off)
	}
	if refs != info.Refs || instrs != info.Instrs {
		return SegmentInfo{}, corrupt("totals disagree with header: %d/%d refs, %d/%d instrs",
			refs, info.Refs, instrs, info.Instrs)
	}
	return info, nil
}

// DecodeAll validates a segment and materializes every reference —
// test and tooling convenience; the simulator path uses Replay instead.
func DecodeAll(data []byte) ([]trace.Ref, error) {
	info, err := Stat(data)
	if err != nil {
		return nil, err
	}
	_, off, _ := header(data)
	out := make([]trace.Ref, 0, info.Refs)
	for b := 0; b < info.Blocks; b++ {
		nr, payload, next, err := blockAt(data, off)
		if err != nil {
			return nil, err
		}
		out, _, err = decodeBlock(out, nr, payload)
		if err != nil {
			return nil, err
		}
		off = next
	}
	return out, nil
}

// Segment is a validated trace segment: the only way to obtain one
// from raw bytes is Validate (the full Stat gate), so holding a
// Segment is proof the bytes decode cleanly. Replays constructed from
// a Segment skip revalidation — the compile-once-replay-many loop pays
// the strict gate once per segment, not once per cell.
type Segment struct {
	data []byte
	info SegmentInfo
}

// Validate runs the full Stat gate over data and wraps it as a
// Segment. The byte slice is retained and must not be mutated.
func Validate(data []byte) (Segment, error) {
	info, err := Stat(data)
	if err != nil {
		return Segment{}, err
	}
	return Segment{data: data, info: info}, nil
}

// Bytes returns the segment's encoded form.
func (s Segment) Bytes() []byte { return s.data }

// Info returns the validated segment summary.
func (s Segment) Info() SegmentInfo { return s.info }
