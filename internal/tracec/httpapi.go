package tracec

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"xlate/internal/trace"
)

// maxSegmentBytes is the default bound on one ingested segment
// (decompressed): 64 MiB holds roughly 20–30 M references, far past
// the budgets the experiments run at.
const maxSegmentBytes = 64 << 20

// ErrBadTrace is wrapped by ingestion validation failures that are the
// client's fault: unknown magic, malformed records, zero-instruction
// pacing, empty streams. It maps to 400; ErrSegmentCorrupt (a damaged
// pre-compiled segment) does too.
var ErrBadTrace = errors.New("invalid trace stream")

// TraceInfo describes one ingested segment — the ingestion response
// and the /v1/traces listing entry. The Workload field is the name to
// submit jobs under ("trace:<key>"); the segment travels between
// cluster nodes by Key.
//
//eeat:wire
type TraceInfo struct {
	Key      string `json:"key"`
	Workload string `json:"workload"`
	Refs     uint64 `json:"refs"`
	Instrs   uint64 `json:"instrs"`
	Blocks   int    `json:"blocks"`
	Bytes    int64  `json:"bytes"`
}

// API serves the trace ingestion endpoints over a Store:
//
//	POST /v1/traces        ingest a reference stream (XLTRACE1 records
//	                       or a pre-compiled XLSEGv1 segment; chunked
//	                       bodies and Content-Encoding: gzip accepted;
//	                       413 past MaxBytes, 429 past MaxPending)
//	GET  /v1/traces/{key}  fetch a segment by content hash
//	                       (application/octet-stream, immutable ETag)
//
// Both the service daemon and the cluster coordinator mount it, so a
// stream ingested anywhere is fetchable by every node that learns its
// content hash.
type API struct {
	store    *Store
	maxBytes int64
	pending  chan struct{}
	logf     func(string, ...any)
}

// APIConfig bounds the ingestion endpoint.
type APIConfig struct {
	// MaxBytes caps one decompressed segment (default 64 MiB). Larger
	// uploads get 413.
	MaxBytes int64
	// MaxPending caps concurrent ingest decodes (default 2). Excess
	// uploads get 429 with Retry-After, mirroring the job queue's
	// admission control.
	MaxPending int
	// Logf receives ingest lines (nil = silent).
	Logf func(string, ...any)
}

// NewAPI builds the handler over store.
func NewAPI(store *Store, cfg APIConfig) *API {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = maxSegmentBytes
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &API{
		store:    store,
		maxBytes: cfg.MaxBytes,
		pending:  make(chan struct{}, cfg.MaxPending),
		logf:     cfg.Logf,
	}
}

func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/traces":
		a.ingest(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/traces/"):
		a.serveSegment(w, r, strings.TrimPrefix(r.URL.Path, "/v1/traces/"))
	default:
		writeError(w, http.StatusNotFound, "no such trace endpoint")
	}
}

// WorkloadName is the job-API name an ingested segment runs under.
func WorkloadName(key string) string { return "trace:" + key }

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck // response write
}

// ingest is POST /v1/traces.
func (a *API) ingest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST a trace stream here")
		return
	}
	select {
	case a.pending <- struct{}{}:
		defer func() { <-a.pending }()
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "too many concurrent trace ingests")
		return
	}

	// Bound the raw body, then the decompressed stream: a gzip bomb hits
	// the decompressed limit, an oversized plain body the raw one — both
	// are 413, not OOM.
	body := io.Reader(http.MaxBytesReader(w, r.Body, a.maxBytes))
	if strings.EqualFold(r.Header.Get("Content-Encoding"), "gzip") {
		gz, err := gzip.NewReader(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad gzip stream: %v", err)
			return
		}
		defer gz.Close()
		body = gz
	}
	data, err := io.ReadAll(io.LimitReader(body, a.maxBytes+1))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "trace exceeds the %d-byte limit", a.maxBytes)
			return
		}
		writeError(w, http.StatusBadRequest, "reading trace body: %v", err)
		return
	}
	if int64(len(data)) > a.maxBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "trace exceeds the %d-byte limit (decompressed)", a.maxBytes)
		return
	}

	segment, info, err := Ingest(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := ContentKey(segment)
	if err := a.store.Put(key, segment); err != nil {
		writeError(w, http.StatusInternalServerError, "storing segment: %v", err)
		return
	}
	a.logf("ingested trace %s: %d refs, %d instrs, %d blocks, %d bytes",
		key[:12], info.Refs, info.Instrs, info.Blocks, len(segment))

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	resp := TraceInfo{
		Key:      key,
		Workload: WorkloadName(key),
		Refs:     info.Refs,
		Instrs:   info.Instrs,
		Blocks:   info.Blocks,
		Bytes:    int64(len(segment)),
	}
	b, _ := json.MarshalIndent(resp, "", "  ") //nolint:errcheck // plain struct
	w.Write(append(b, '\n'))                   //nolint:errcheck // response write
}

// serveSegment is GET /v1/traces/{key}. Segments are immutable by
// construction (the key is the content hash), so the cache headers
// mirror the result endpoint's immutable discipline.
func (a *API) serveSegment(w http.ResponseWriter, r *http.Request, key string) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "GET a segment here")
		return
	}
	etag := `"` + key + `"`
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, err := a.store.Get(key)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "max-age=31536000, immutable")
	w.Header().Set("Content-Length", fmt.Sprint(len(data)))
	if r.Method == http.MethodHead {
		return
	}
	w.Write(data) //nolint:errcheck // response write
}

// Ingest validates an uploaded stream and canonicalizes it into a
// segment. Two formats are accepted: the documented external trace
// format (XLTRACE1 varint records — what `eeatsim -record` writes) and
// an already-compiled XLSEGv1 segment. Validation is strict with typed
// errors: malformed records wrap ErrBadTrace, damaged segments wrap
// ErrSegmentCorrupt. Every reference must carry at least one
// instruction — the generator's pacing invariant — or a replay could
// spin without consuming budget.
func Ingest(data []byte) ([]byte, SegmentInfo, error) {
	switch {
	case len(data) >= len(segMagic) && bytes.Equal(data[:len(segMagic)], segMagic):
		info, err := Stat(data)
		if err != nil {
			return nil, SegmentInfo{}, err
		}
		return data, info, nil
	case bytes.HasPrefix(data, []byte("XLTRACE1\n")):
		refs, err := decodeExternal(data)
		if err != nil {
			return nil, SegmentInfo{}, err
		}
		seg, info, err := EncodeRefs(refs)
		if err != nil {
			return nil, SegmentInfo{}, fmt.Errorf("tracec: %w: %v", ErrBadTrace, err)
		}
		return seg, info, nil
	default:
		return nil, SegmentInfo{}, fmt.Errorf("tracec: %w: unrecognized magic (want XLTRACE1 or XLSEGv1)", ErrBadTrace)
	}
}

// decodeExternal strictly decodes an XLTRACE1 stream.
func decodeExternal(data []byte) ([]trace.Ref, error) {
	tr, err := trace.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("tracec: %w: %v", ErrBadTrace, err)
	}
	var refs []trace.Ref
	for {
		r, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tracec: %w: record %d: %v", ErrBadTrace, len(refs), err)
		}
		if r.Instrs == 0 {
			return nil, fmt.Errorf("tracec: %w: record %d carries zero instructions (pacing invariant: every reference advances the budget)", ErrBadTrace, len(refs))
		}
		refs = append(refs, r)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("tracec: %w: empty trace", ErrBadTrace)
	}
	return refs, nil
}
